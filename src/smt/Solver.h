//===- Solver.h - SMT solving facade ----------------------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver interface the equivalence checker programs against — the role
/// of the paper's Coq plugin plus external solver (Figure 6, the trusted
/// "Plugin" and "Solver" boxes). The default backend bit-blasts to the
/// in-repo CDCL solver; the interface is virtual so tests can inject a
/// deliberately unsound backend and demonstrate that certificate replay
/// (core/Certificate.h) catches it, mirroring the paper's TCB discussion
/// in §6.4.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SMT_SOLVER_H
#define LEAPFROG_SMT_SOLVER_H

#include "smt/BvFormula.h"
#include "smt/Sat.h"

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace leapfrog {
namespace smt {

class ProofLog;

/// Outcome of a satisfiability query.
enum class SatResult { Sat, Unsat };

/// A satisfying assignment: variable name → value.
using Model = std::vector<std::pair<std::string, Bitvector>>;

/// Cumulative statistics across queries, reported by the bench harness
/// (the paper's §7.3 "SMT Solver Performance" discussion).
struct SolverStats {
  uint64_t Queries = 0;
  uint64_t SatAnswers = 0;
  uint64_t UnsatAnswers = 0;
  /// Physical solver round-trips: actual CDCL solve calls, or — for the
  /// external backend — check-sat wire exchanges with the child process.
  /// Equals Queries for unbatched solving; batched sessions
  /// (IncrementalSession::checkSatBatch) answer several goals per
  /// round-trip, so RoundTrips < Queries is the direct measure of the
  /// batching win (check_perf_baseline.py gates on it).
  uint64_t RoundTrips = 0;
  uint64_t TotalSatVars = 0;
  uint64_t TotalSatClauses = 0;
  uint64_t TotalMicros = 0;
  uint64_t MaxMicros = 0;
  std::vector<uint64_t> QueryMicros; ///< Per-query latencies.
  /// Proof-certification counters (BitBlastSolver with CertifyUnsat).
  uint64_t CertifiedUnsat = 0; ///< UNSAT answers validated by DratChecker.
  uint64_t ProofLemmas = 0;    ///< Total lemmas across checked proofs.
  uint64_t ProofMicros = 0;    ///< Time spent replaying proofs.
  /// Incremental-session counters (SmtSolver::openSession).
  uint64_t SessionsOpened = 0;
  uint64_t SessionQueries = 0;   ///< Queries answered through a session.
  uint64_t SessionPremises = 0;  ///< Premise conjuncts blasted into sessions.
  uint64_t PremiseCacheHits = 0; ///< Premises deduplicated by the
                                 ///< structural-hash cache instead of
                                 ///< being re-blasted.
  uint64_t ReusedClauses = 0;    ///< Σ over session queries of the clauses
                                 ///< (premise CNF + learned) already live
                                 ///< in the solver when the query started —
                                 ///< work a monolithic solver would redo.
  /// Session memory-management counters (BitBlastSolver sessions only;
  /// all zero on the monolithic fallback, which holds no solver state).
  /// The totals are monotone across queries and session restarts.
  uint64_t ClausesDeleted = 0;  ///< Clauses hard-deleted by reduceDB and
                                ///< by retired-goal purges, summed over
                                ///< every session CDCL instance.
  uint64_t ReduceDbRuns = 0;    ///< Learned-DB reductions across sessions.
  uint64_t ArenaBytesPeak = 0;  ///< Max live clause-arena bytes any single
                                ///< session CDCL instance ever reached.
  uint64_t PeakLearnts = 0;     ///< Max simultaneous learned clauses in
                                ///< any single session CDCL instance.
  uint64_t SessionRestarts = 0; ///< SessionLimits trips: the session was
                                ///< torn down and rebuilt from premises.
  uint64_t PremisesGcd = 0;     ///< Premise groups (structural-hash cache
                                ///< entries + their blasted CNF) collected
                                ///< when a session restart dropped its
                                ///< solver; the premises themselves are
                                ///< re-blasted from the cached formulas.

  /// Folds \p O into this record: totals (query counts, micros, clause
  /// counts, session counters) add, peaks (MaxMicros, ArenaBytesPeak,
  /// PeakLearnts) take the maximum, and the per-query latency vector is
  /// concatenated. This is the aggregation path of the parallel frontier
  /// engine: each worker accumulates into its own backend's stats with no
  /// synchronization, and the coordinator merges the per-worker records
  /// after the run (see SmtSolver::absorbStats). Merging is associative
  /// and commutative except for QueryMicros order, which no consumer
  /// depends on (the bench harness sorts before taking percentiles).
  /// Note the peak semantics: after a merge, ArenaBytesPeak/PeakLearnts
  /// still mean "max any single CDCL instance reached", never a sum —
  /// concurrent instances don't share an arena, so summing would
  /// overstate per-instance pressure, which is what SessionLimits bounds.
  void merge(const SolverStats &O);
};

/// Memory bounds for an incremental session (0 = unlimited). Checked
/// after every query against the session solver's *peak* footprint since
/// it was (re)built — memory is consumed at the peak, not at the
/// post-query residue, so the peak is what a bound must bound. A session
/// over either limit is torn down and rebuilt from its cached premise
/// formulas — correct by construction, since the rebuilt solver answers
/// from exactly the same premise set — trading the accumulated learned
/// clauses for a bounded footprint. Retired-goal deletion and the
/// in-solver reduceDB keep sessions under sane bounds on their own, so
/// restarts are the backstop, not the steady state.
struct SessionLimits {
  size_t MaxLearnts = 0;    ///< Peak simultaneous learned clauses.
  size_t MaxArenaBytes = 0; ///< Peak live clause-arena bytes.
};

/// Abstract satisfiability backend for FOL(BV).
class SmtSolver {
public:
  virtual ~SmtSolver() = default;

  /// An incremental solving session: persistent *premises* asserted once,
  /// then many per-query *goals* posed against their conjunction. This is
  /// the shape of the checker's entailment loop (⋀R ⊨ ψ with R growing
  /// monotonically): each conjunct of R is asserted exactly once per
  /// session, and each popped ψ becomes one goal query.
  ///
  /// Contract: checkSatUnderPremises(G, M) must answer exactly like
  /// checkSat(P₁ ∧ … ∧ Pₙ ∧ G, M) on the premises asserted so far — the
  /// default implementation *is* that conjunction (correct for any
  /// backend); BitBlastSolver overrides it with a long-lived CDCL
  /// instance, activation literals and a premise bit-blast cache.
  ///
  /// A session must not outlive the solver that opened it. Sessions are
  /// not thread-safe, and share the owning solver's statistics.
  class IncrementalSession {
  public:
    virtual ~IncrementalSession() = default;

    /// Asserts \p F as a persistent premise for all later queries.
    virtual void assertPremise(const BvFormulaRef &F) = 0;

    /// Decides satisfiability of (asserted premises) ∧ \p Goal; fills
    /// \p M with a witness when satisfiable (nullptr to skip).
    virtual SatResult checkSatUnderPremises(const BvFormulaRef &Goal,
                                            Model *M) = 0;

    /// Batched form: decides every goal independently against the same
    /// premise set, resizing \p Out so Out[i] equals what
    /// checkSatUnderPremises(Goals[i], nullptr) would have answered. No
    /// models are produced. The base implementation loops the per-goal
    /// query (correct for any backend); session backends override it to
    /// share one activation scope and answer several goals per physical
    /// round-trip — a SAT round's model resolves every goal it satisfies,
    /// and an UNSAT round's failed-assumption core licenses attributing
    /// Unsat to all goals still pending, so the worst case is one
    /// round-trip per goal and the entailment-heavy typical case is one
    /// round-trip total. Answers must not depend on batch composition.
    virtual void checkSatBatch(const std::vector<BvFormulaRef> &Goals,
                               std::vector<SatResult> &Out) {
      Out.resize(Goals.size(), SatResult::Sat);
      for (size_t I = 0; I < Goals.size(); ++I)
        Out[I] = checkSatUnderPremises(Goals[I], nullptr);
    }

    /// Entailment of \p F by the asserted premises, decided as
    /// UNSAT(premises ∧ ¬F) — the session analogue of isValid().
    bool isEntailed(const BvFormulaRef &F) {
      return checkSatUnderPremises(BvFormula::mkNot(F), nullptr) ==
             SatResult::Unsat;
    }
  };

  /// Opens an incremental session against this backend. The base
  /// implementation returns a monolithic fallback that replays the
  /// premise conjunction through checkSat() on every query — no state is
  /// carried over, but the answers are correct by construction for any
  /// backend (and inherit per-query certification when the backend
  /// certifies checkSat). \p Limits bounds the session's solver-side
  /// memory; backends without long-lived solver state (the fallback)
  /// ignore it.
  virtual std::unique_ptr<IncrementalSession>
  openSession(const SessionLimits &Limits);

  /// Shorthand for an unlimited session.
  std::unique_ptr<IncrementalSession> openSession() {
    return openSession(SessionLimits());
  }

  /// Spawns an *independent* backend suitable for a worker thread of the
  /// parallel frontier engine: a fresh instance of the same backend
  /// configuration, sharing no mutable state (no statistics, sessions,
  /// caches) with this solver, so the worker may use it — and sessions
  /// opened on it — from its own thread without synchronization. Returns
  /// nullptr when the backend cannot provide one (the base default), in
  /// which case callers must stay single-threaded; core::checkWithSpec
  /// falls back to the sequential engine in that case. Fold a worker's
  /// statistics back with absorbStats() after joining it.
  virtual std::unique_ptr<SmtSolver> spawnWorker() { return nullptr; }

  /// Merges \p O into this solver's statistics (see SolverStats::merge).
  /// The caller must guarantee exclusive access to both records — the
  /// parallel engine calls this only after its worker threads joined.
  void absorbStats(const SolverStats &O) { Stats.merge(O); }

  /// Attaches a proof log (see ProofLog.h): sessions opened while a log is
  /// attached record one per-goal DRUP slice stream each, and one-shot
  /// UNSAT answers record one-shot streams, so every UNSAT this backend
  /// reports afterwards is covered by a replayable proof slice in \p Log.
  /// Returns false when the backend cannot capture proofs (the base
  /// default; also SmtLibSolver, which has no access to the external
  /// solver's reasoning — route it through CrossCheckSolver instead, whose
  /// bit-blasting reference leg records the proof). The log must outlive
  /// the attachment; detach before destroying it. Attaching does not
  /// change answers or decision order — capture is passive.
  virtual bool attachProofLog(ProofLog *Log) {
    (void)Log;
    return false;
  }
  virtual void detachProofLog() {}
  /// True when attachProofLog() would succeed on this backend.
  virtual bool supportsProofCapture() const { return false; }

  /// Cooperative cancellation, used by the portfolio backend to stop the
  /// losing leg once a race is decided. interrupt() may be called from
  /// any thread and requests that the solve in flight (if any) abandon
  /// its search as soon as practical; an abandoned query's answer is
  /// garbage and interrupted() — polled from the solving thread — reports
  /// that. clearInterrupt() re-arms the backend for the next query. The
  /// base implementations are no-ops: a backend that cannot be
  /// interrupted simply runs its query to completion and never reports
  /// interrupted(), which is always sound, just slower to cancel.
  virtual void interrupt() {}
  virtual bool interrupted() const { return false; }
  virtual void clearInterrupt() {}

  /// Decides satisfiability of \p F over its free variables; fills \p M
  /// with a witness when satisfiable (pass nullptr to skip).
  ///
  /// Precondition: \p F must be well-sorted — every variable occurrence
  /// agrees on width and every operator's operand widths are consistent
  /// (guaranteed by the logic/Lower.h chain; asserted by the default
  /// backend's bit-blaster). The query is decided exactly: no unknowns,
  /// no timeouts at this layer (callers budget wall-clock above, see
  /// core::CheckOptions::MaxWallMicros).
  ///
  /// Complexity: FOL(BV) satisfiability is NP-complete. The default
  /// backend emits a CNF of O(nodes × width) variables and clauses and
  /// runs CDCL over it — exponential worst case, fast on the checker's
  /// entailment queries in practice (§7.3 reports median solver times in
  /// the milliseconds).
  virtual SatResult checkSat(const BvFormulaRef &F, Model *M) = 0;

  /// Validity of the universal closure: ∀x⃗. F, decided as UNSAT(¬F).
  /// On invalidity, fills \p Counterexample if non-null with a falsifying
  /// assignment. This is the only operation the equivalence checker and
  /// the certificate replayer need, which is why UNSAT answers are the
  /// certified direction (see BitBlastSolver::CertifyUnsat).
  bool isValid(const BvFormulaRef &F, Model *Counterexample = nullptr);

  const SolverStats &stats() const { return Stats; }
  void resetStats() { Stats = SolverStats(); }

protected:
  SolverStats Stats;

private:
  class MonolithicSession; ///< The openSession() fallback (Solver.cpp).
};

/// The default backend: bit-blasting + CDCL (see BitBlast.h, Sat.h).
class BitBlastSolver : public SmtSolver {
public:
  SatResult checkSat(const BvFormulaRef &F, Model *M) override;

  /// Incremental sessions backed by one long-lived SatSolver: premises
  /// are bit-blasted once (deduplicated by a structural-hash cache) and
  /// goals are guarded by fresh activation literals solved under
  /// assumptions, so learned clauses, watch lists and VSIDS/phase state
  /// carry over between queries. Certification no longer forces the
  /// monolithic fallback: with CertifyUnsat (or an attached proof log)
  /// the session emits per-goal DRUP slices under each goal's activation
  /// scope — deletions are part of the stream, so reduceDB and goal GC
  /// stay legal — validated in-process by a StreamingProofChecker, or
  /// recorded into the attached ProofLog for certificate serialization.
  ///
  /// Session memory is bounded, not monotone: every goal's clauses
  /// (guard, Tseitin definitions, and any lemma derived from them) are
  /// hard-deleted when the goal's activation literal is retired, the
  /// learned-clause DB is reduced on SessionReduce's schedule, and
  /// \p Limits — when non-zero — triggers a full session rebuild from
  /// the cached premise formulas as a last resort.
  std::unique_ptr<IncrementalSession>
  openSession(const SessionLimits &Limits) override;
  using SmtSolver::openSession;

  /// When set, every UNSAT answer is accompanied by a DRUP proof and
  /// validated before being reported; a failed validation aborts. One-shot
  /// queries replay a DratProof through DratChecker (see Drat.h);
  /// incremental sessions stream per-goal slices through a deletion-aware
  /// StreamingProofChecker (see ProofLog.h) — and report genuine session
  /// statistics, instead of the pre-certificate behavior of silently
  /// degrading to monolithic solving. This removes the CDCL solver from
  /// the trusted base, the "proof reconstruction" step the paper's §6.4
  /// leaves as future work. SAT answers need no certification: the
  /// checker's callers only act on validity (UNSAT of the negation), and
  /// SAT answers carry a model that is checked against the formula by
  /// construction of the bit-blaster's variable mapping. When a proof log
  /// is attached (attachProofLog), streams are recorded for offline
  /// checking instead of being validated inline.
  bool CertifyUnsat = false;

  bool attachProofLog(ProofLog *Log) override {
    CaptureLog = Log;
    return true;
  }
  void detachProofLog() override { CaptureLog = nullptr; }
  bool supportsProofCapture() const override { return true; }

  /// Clause-DB reduction policy handed to every session's CDCL solver.
  /// The default geometric schedule is the production setting; tests
  /// force an aggressive schedule (reduce at every opportunity) or
  /// disable reduction entirely to differentially check that answers are
  /// invariant under it. One-shot checkSat() solves always run with
  /// reduction off — a single query never lives long enough to benefit,
  /// and with CertifyUnsat the smaller clause set keeps proofs lean.
  SatSolver::ReducePolicy SessionReduce;

  /// Hard goal retirement (the default): each session goal is blasted
  /// under its activation guard and its clauses — plus every lemma
  /// derived from them — are physically deleted after the query (batched
  /// through SatSolver::simplify()). Off restores the grow-only PR-2
  /// behavior where retired goals stay as permanently satisfied dead
  /// weight; kept as an ablation/baseline knob, differential-tested to
  /// answer identically.
  bool SessionHardRetire = true;

  /// Retirement purges are batched: a session runs simplify() once the
  /// retired-clause estimate reaches max(SessionPurgeBatch, live/4) —
  /// the scan plus watcher rebuild is O(database), so purging per query
  /// would dominate premise-heavy sessions, while a 25% dead-weight
  /// ceiling keeps the amortized cost constant. Tests drop this to 1 to
  /// purge at every opportunity.
  size_t SessionPurgeBatch = 2048;

  /// A fresh BitBlastSolver with this instance's configuration
  /// (CertifyUnsat, SessionReduce, SessionHardRetire, SessionPurgeBatch)
  /// and zeroed statistics — the per-worker backend contract of the
  /// parallel frontier engine.
  std::unique_ptr<SmtSolver> spawnWorker() override;

  /// Cooperative cancellation: the interrupt flag is wired into every
  /// CDCL instance this backend creates (session solvers at build time,
  /// one-shot solvers per query), which poll it once per search
  /// iteration. See SmtSolver::interrupt().
  void interrupt() override { Stop.store(true, std::memory_order_relaxed); }
  bool interrupted() const override {
    return Stop.load(std::memory_order_relaxed);
  }
  void clearInterrupt() override {
    Stop.store(false, std::memory_order_relaxed);
  }

private:
  class Session; ///< The incremental openSession() backend (Solver.cpp).
  /// Cancellation flag polled by this backend's CDCL instances.
  std::atomic<bool> Stop{false};
  /// Destination for proof streams while attached; sessions opened while
  /// set record into it, and one-shot UNSAT answers add one-shot streams.
  ProofLog *CaptureLog = nullptr;
};

/// Returns the process-wide default solver instance (a BitBlastSolver
/// without proof certification). Not thread-safe: the instance, its
/// statistics, and any sessions opened on it are shared mutable state, so
/// concurrent checkers must each construct their own backend and pass it
/// via core::CheckOptions::Solver. Debug builds assert that every call
/// comes from the thread that *first* touched the instance — ownership
/// never rebinds, so even sequential use from a second thread trips the
/// check (the conservative rule is free of synchronization), and the
/// diagnostic reports both the owning and the offending thread id; any
/// multi-thread program should construct explicit BitBlastSolver
/// instances instead (or let the parallel frontier engine spawn them via
/// SmtSolver::spawnWorker — one backend plus one session set per worker
/// is the threading contract, see docs/ARCHITECTURE.md).
SmtSolver &defaultSolver();

} // namespace smt
} // namespace leapfrog

#endif // LEAPFROG_SMT_SOLVER_H
