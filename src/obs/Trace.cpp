//===- obs/Trace.cpp - Structured span/event tracing ----------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"

#include <cstdio>
#include <fstream>

namespace leapfrog {
namespace obs {

namespace {

std::atomic<TraceSink *> GlobalSink{nullptr};

uint32_t nextThreadId() {
  static std::atomic<uint32_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

} // namespace

TraceSink *traceSink() { return GlobalSink.load(std::memory_order_relaxed); }

void setTraceSink(TraceSink *Sink) {
  GlobalSink.store(Sink, std::memory_order_release);
}

uint32_t currentThreadId() {
  static thread_local uint32_t Id = nextThreadId();
  return Id;
}

void nameCurrentThread(const std::string &Name) {
  if (TraceSink *Sink = traceSink())
    Sink->nameCurrentThread(Name);
}

TraceSink::TraceSink() : Epoch(Clock::now()) {}

void TraceSink::record(Event E) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Events.push_back(std::move(E));
}

void TraceSink::begin(const char *Name, const char *Category,
                      const TraceArgs &Args) {
  Event E;
  E.Phase = 'B';
  E.Name = Name;
  E.Category = Category;
  E.TsMicros = Clock::microsSince(Epoch);
  E.Tid = currentThreadId();
  E.Args = Args;
  record(std::move(E));
}

void TraceSink::end() {
  Event E;
  E.Phase = 'E';
  E.Name = nullptr;
  E.Category = nullptr;
  E.TsMicros = Clock::microsSince(Epoch);
  E.Tid = currentThreadId();
  record(std::move(E));
}

void TraceSink::instant(const char *Name, const char *Category,
                        const TraceArgs &Args) {
  Event E;
  E.Phase = 'i';
  E.Name = Name;
  E.Category = Category;
  E.TsMicros = Clock::microsSince(Epoch);
  E.Tid = currentThreadId();
  E.Args = Args;
  record(std::move(E));
}

void TraceSink::counterValue(const char *Name, const char *Category,
                             uint64_t Value) {
  Event E;
  E.Phase = 'C';
  E.Name = Name;
  E.Category = Category;
  E.TsMicros = Clock::microsSince(Epoch);
  E.Tid = currentThreadId();
  E.Args.add("value", Value);
  record(std::move(E));
}

void TraceSink::nameCurrentThread(const std::string &Name) {
  Event E;
  E.Phase = 'M';
  E.Name = nullptr;
  E.Category = nullptr;
  E.DynamicName = Name;
  E.TsMicros = Clock::microsSince(Epoch);
  E.Tid = currentThreadId();
  record(std::move(E));
}

size_t TraceSink::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Events.size();
}

std::string TraceSink::toChromeJson() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Out = "{\"traceEvents\":[";
  bool First = true;
  for (const Event &E : Events) {
    if (!First)
      Out += ',';
    First = false;
    Out += "{\"ph\":\"";
    Out += E.Phase;
    Out += "\",\"pid\":1,\"tid\":" + std::to_string(E.Tid) +
           ",\"ts\":" + std::to_string(E.TsMicros);
    if (E.Phase == 'M') {
      // Thread-name metadata: the name lives in args, per the spec.
      Out += ",\"name\":\"thread_name\",\"args\":{\"name\":";
      appendJsonString(Out, E.DynamicName);
      Out += "}}";
      continue;
    }
    if (E.Name) {
      Out += ",\"name\":";
      appendJsonString(Out, E.Name);
    }
    if (E.Category) {
      Out += ",\"cat\":";
      appendJsonString(Out, E.Category);
    }
    if (E.Phase == 'i')
      Out += ",\"s\":\"t\"";
    if (!E.Args.Pairs.empty()) {
      Out += ",\"args\":{";
      bool FirstArg = true;
      for (const TraceArgs::Pair &P : E.Args.Pairs) {
        if (!FirstArg)
          Out += ',';
        FirstArg = false;
        appendJsonString(Out, P.Key);
        Out += ':';
        if (P.IsInt)
          Out += P.Value;
        else
          appendJsonString(Out, P.Value);
      }
      Out += '}';
    }
    Out += '}';
  }
  Out += "]}";
  return Out;
}

bool TraceSink::writeChromeJson(const std::string &Path,
                                std::string *Error) const {
  std::ofstream OutFile(Path, std::ios::binary);
  if (!OutFile) {
    if (Error)
      *Error = "cannot open trace output file: " + Path;
    return false;
  }
  OutFile << toChromeJson() << "\n";
  OutFile.flush();
  if (!OutFile) {
    if (Error)
      *Error = "short write to trace output file: " + Path;
    return false;
  }
  return true;
}

} // namespace obs
} // namespace leapfrog
