//===- obs/Metrics.h - Process-wide metrics registry ----------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// A dependency-free registry of named counters, gauges and fixed-bucket
// latency histograms, shared by every layer of the engine (SAT core, SMT
// sessions, external backends, checker, parallel engine, service). Design
// rules, in priority order:
//
//  1. Passive. Nothing here feeds back into the search: metrics are written,
//     never read, on the hot path. Snapshots are for humans and tools.
//  2. Cheap. The record path is a relaxed atomic add (histograms: a bucket
//     index computation plus three relaxed adds and a CAS max). Name lookup
//     happens once per call site — callers cache the returned handle in a
//     function-local static — so the registry mutex is off the hot path.
//  3. Mergeable. MetricsSnapshot mirrors SolverStats::merge: counters and
//     histogram buckets add, gauges take the last value, peaks max. Merge is
//     associative, which the ObservabilityTest suite pins.
//
// Rendering is deterministic (names sorted, integers only) so snapshots can
// be compared byte-wise in tests; toJson() emits a single-line JSON object
// and toPrometheus() the text exposition format.
//
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_OBS_METRICS_H
#define LEAPFROG_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace leapfrog {
namespace obs {

/// Monotone event count. Relaxed increments; readers see a consistent value
/// only through Registry::snapshot().
class Counter {
public:
  void add(uint64_t N = 1) { Value.fetch_add(N, std::memory_order_relaxed); }

  uint64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Value{0};
};

/// Instantaneous level (queue depth, live sessions). set/add are relaxed; the
/// snapshot records the current level plus the high-water mark.
class Gauge {
public:
  void set(int64_t V) {
    Value.store(V, std::memory_order_relaxed);
    maxPeak(V);
  }

  void add(int64_t Delta) {
    int64_t Now = Value.fetch_add(Delta, std::memory_order_relaxed) + Delta;
    maxPeak(Now);
  }

  int64_t value() const { return Value.load(std::memory_order_relaxed); }

  int64_t peak() const { return Peak.load(std::memory_order_relaxed); }

private:
  void maxPeak(int64_t V) {
    int64_t Cur = Peak.load(std::memory_order_relaxed);
    while (V > Cur &&
           !Peak.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
    }
  }

  std::atomic<int64_t> Value{0};
  std::atomic<int64_t> Peak{0};
};

/// Fixed-bucket latency histogram. Buckets are powers of two from 1us up to
/// 2^(NumBuckets-2) us, with the last bucket catching everything beyond —
/// exponential resolution matches how solve latencies actually spread (most
/// queries finish in tens of microseconds, stragglers in seconds). Fixed
/// geometry is what makes snapshots mergeable bucket-wise.
class Histogram {
public:
  static constexpr size_t NumBuckets = 28;

  /// Upper bound (inclusive) of bucket I in microseconds; the final bucket
  /// is unbounded.
  static uint64_t bucketBound(size_t I) { return uint64_t(1) << I; }

  void observe(uint64_t Micros) {
    Buckets[bucketIndex(Micros)].fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(Micros, std::memory_order_relaxed);
    uint64_t Cur = Max.load(std::memory_order_relaxed);
    while (Micros > Cur &&
           !Max.compare_exchange_weak(Cur, Micros, std::memory_order_relaxed)) {
    }
  }

  static size_t bucketIndex(uint64_t Micros) {
    size_t I = 0;
    while (I + 1 < NumBuckets && Micros > bucketBound(I))
      ++I;
    return I;
  }

private:
  friend class Registry;
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Max{0};
};

/// A point-in-time copy of a registry, detached from the atomics. Snapshots
/// are plain data: mergeable, comparable, renderable.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<uint64_t> Buckets; // size Histogram::NumBuckets
    uint64_t Count = 0;
    uint64_t Sum = 0;
    uint64_t Max = 0;

    /// Smallest bucket upper bound B with cumulative count >= Q*Count.
    /// Returns 0 on an empty histogram.
    uint64_t quantileUpperBoundMicros(double Q) const;
  };

  struct GaugeData {
    int64_t Value = 0;
    int64_t Peak = 0;
  };

  std::map<std::string, uint64_t> Counters;
  std::map<std::string, GaugeData> Gauges;
  std::map<std::string, HistogramData> Histograms;

  /// Counters and histogram buckets add; gauges take the other side's value
  /// (last writer wins) and max peaks. Associative and commutative except
  /// for the gauge value, which is last-wins by construction.
  void merge(const MetricsSnapshot &Other);

  uint64_t counter(const std::string &Name) const;

  /// Deterministic single-line JSON object:
  ///   {"counters":{...},"gauges":{...},"histograms":{...}}
  std::string toJson() const;

  /// Prometheus text exposition (counters, gauges, cumulative histogram
  /// buckets with +Inf, _sum and _count series). Metric names have '.'
  /// mapped to '_' to satisfy the Prometheus grammar.
  std::string toPrometheus() const;
};

/// Named-handle registry. Handles are stable for the registry's lifetime
/// (nodes are heap-allocated behind the map), so call sites cache them:
///
///   static obs::Counter &Restarts = obs::metrics().counter("sat.restarts");
///   Restarts.add();
///
/// The process-wide instance from obs::metrics() lives forever; tests build
/// private registries to exercise snapshot/merge in isolation.
class Registry {
public:
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  MetricsSnapshot snapshot() const;

private:
  mutable std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

/// The process-wide registry (never destroyed, safe from static destructors
/// and detached threads alike).
Registry &metrics();

} // namespace obs
} // namespace leapfrog

#endif // LEAPFROG_OBS_METRICS_H
