//===- obs/Trace.h - Structured span/event tracing ------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Span/event recording for the whole engine, emitted as Chrome/Perfetto
// trace_event JSON (the `{"traceEvents":[...]}` array format; open the file
// at https://ui.perfetto.dev). The contract mirrors Metrics.h:
//
//  * Passive: spans record what happened, nothing reads them back. With a
//    sink installed, the verdict, decision stream and certificate bytes are
//    bit-identical to an uninstrumented run — timestamps exist only in the
//    trace output. ObservabilityTest pins this over the study registry.
//  * Cheap when off: the global sink pointer is one relaxed atomic load, so
//    a disabled ScopedSpan is a null check and nothing else. No memory is
//    touched, no clock is read.
//  * Thread-aware: each thread gets a stable small tid from a thread-local
//    counter; nameCurrentThread() emits the `thread_name` metadata event
//    that gives per-worker tracks on the Perfetto timeline.
//
// Event phases follow the trace_event spec: B/E span pairs (begin/end on the
// same thread), i instants, C counter tracks, M metadata.
//
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_OBS_TRACE_H
#define LEAPFROG_OBS_TRACE_H

#include "obs/Clock.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace leapfrog {
namespace obs {

/// Small pre-rendered argument payload for a span or instant: a flat list of
/// key/value pairs rendered into the event's "args" object. Values are either
/// strings (escaped at serialization time) or integers.
class TraceArgs {
public:
  TraceArgs() = default;

  TraceArgs &add(const char *Key, const std::string &Value) {
    Pairs.push_back({Key, Value, /*IsInt=*/false});
    return *this;
  }

  TraceArgs &add(const char *Key, uint64_t Value) {
    Pairs.push_back({Key, std::to_string(Value), /*IsInt=*/true});
    return *this;
  }

  bool empty() const { return Pairs.empty(); }

private:
  friend class TraceSink;
  struct Pair {
    std::string Key;
    std::string Value;
    bool IsInt;
  };
  std::vector<Pair> Pairs;
};

/// In-memory event log with a single epoch, serialized to Chrome trace_event
/// JSON on demand. Recording takes a mutex — tracing is an explicitly-enabled
/// diagnostic mode, and the lock keeps the format code trivial; the always-on
/// fast path is the *disabled* one (see traceSink()).
class TraceSink {
public:
  TraceSink();

  void begin(const char *Name, const char *Category,
             const TraceArgs &Args = TraceArgs());
  void end();
  void instant(const char *Name, const char *Category,
               const TraceArgs &Args = TraceArgs());
  /// A 'C' counter event: plots Value as a stepped track named Name.
  void counterValue(const char *Name, const char *Category, uint64_t Value);
  /// Emits the thread_name metadata event for the calling thread.
  void nameCurrentThread(const std::string &Name);

  size_t eventCount() const;

  /// The full {"traceEvents":[...]} document (deterministic field order).
  std::string toChromeJson() const;

  /// Writes toChromeJson() to Path; false + Error on I/O failure.
  bool writeChromeJson(const std::string &Path, std::string *Error) const;

private:
  struct Event {
    char Phase; // 'B', 'E', 'i', 'C', 'M'
    const char *Name;
    const char *Category;
    std::string DynamicName; // used when Name is nullptr (metadata payloads)
    uint64_t TsMicros;
    uint32_t Tid;
    TraceArgs Args;
  };

  void record(Event E);

  Clock::TimePoint Epoch;
  mutable std::mutex Mutex;
  std::vector<Event> Events;
};

/// The installed sink, or nullptr when tracing is off. One relaxed load.
TraceSink *traceSink();

/// Installs (or, with nullptr, removes) the process-wide sink. Not
/// synchronized against in-flight spans: install before starting work,
/// remove after it drains — the CLI/daemon lifecycle does exactly that.
void setTraceSink(TraceSink *Sink);

/// Stable per-thread id (1-based, in thread-creation order).
uint32_t currentThreadId();

/// Names the calling thread's track if a sink is installed; no-op otherwise.
void nameCurrentThread(const std::string &Name);

/// RAII B/E span. Captures the sink pointer once at construction, so a span
/// never straddles an install/remove.
class ScopedSpan {
public:
  ScopedSpan(const char *Name, const char *Category)
      : Sink(traceSink()) {
    if (Sink)
      Sink->begin(Name, Category);
  }

  ScopedSpan(const char *Name, const char *Category, const TraceArgs &Args)
      : Sink(traceSink()) {
    if (Sink)
      Sink->begin(Name, Category, Args);
  }

  ~ScopedSpan() {
    if (Sink)
      Sink->end();
  }

  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;

private:
  TraceSink *Sink;
};

} // namespace obs
} // namespace leapfrog

#endif // LEAPFROG_OBS_TRACE_H
