//===- obs/Metrics.cpp - Process-wide metrics registry --------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace leapfrog {
namespace obs {

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

Counter &Registry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto &Slot = Counters[Name];
  if (!Slot)
    Slot.reset(new Counter());
  return *Slot;
}

Gauge &Registry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto &Slot = Gauges[Name];
  if (!Slot)
    Slot.reset(new Gauge());
  return *Slot;
}

Histogram &Registry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto &Slot = Histograms[Name];
  if (!Slot)
    Slot.reset(new Histogram());
  return *Slot;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  MetricsSnapshot Snap;
  for (const auto &KV : Counters)
    Snap.Counters[KV.first] = KV.second->value();
  for (const auto &KV : Gauges) {
    MetricsSnapshot::GaugeData G;
    G.Value = KV.second->value();
    G.Peak = KV.second->peak();
    Snap.Gauges[KV.first] = G;
  }
  for (const auto &KV : Histograms) {
    MetricsSnapshot::HistogramData H;
    H.Buckets.resize(Histogram::NumBuckets);
    for (size_t I = 0; I < Histogram::NumBuckets; ++I)
      H.Buckets[I] = KV.second->Buckets[I].load(std::memory_order_relaxed);
    H.Count = KV.second->Count.load(std::memory_order_relaxed);
    H.Sum = KV.second->Sum.load(std::memory_order_relaxed);
    H.Max = KV.second->Max.load(std::memory_order_relaxed);
    Snap.Histograms[KV.first] = std::move(H);
  }
  return Snap;
}

Registry &metrics() {
  static Registry *Global = new Registry();
  return *Global;
}

//===----------------------------------------------------------------------===//
// MetricsSnapshot
//===----------------------------------------------------------------------===//

uint64_t
MetricsSnapshot::HistogramData::quantileUpperBoundMicros(double Q) const {
  if (Count == 0)
    return 0;
  if (Q < 0)
    Q = 0;
  if (Q > 1)
    Q = 1;
  // Ceiling, not rounding: the p95 of 1 sample is that sample's bucket.
  uint64_t Target = static_cast<uint64_t>(Q * static_cast<double>(Count));
  if (Target * 1.0 < Q * static_cast<double>(Count))
    ++Target;
  if (Target == 0)
    Target = 1;
  uint64_t Cumulative = 0;
  for (size_t I = 0; I < Buckets.size(); ++I) {
    Cumulative += Buckets[I];
    if (Cumulative >= Target)
      return I + 1 == Buckets.size() ? Max : Histogram::bucketBound(I);
  }
  return Max;
}

void MetricsSnapshot::merge(const MetricsSnapshot &Other) {
  for (const auto &KV : Other.Counters)
    Counters[KV.first] += KV.second;
  for (const auto &KV : Other.Gauges) {
    GaugeData &G = Gauges[KV.first];
    G.Value = KV.second.Value;
    G.Peak = std::max(G.Peak, KV.second.Peak);
  }
  for (const auto &KV : Other.Histograms) {
    HistogramData &H = Histograms[KV.first];
    if (H.Buckets.empty())
      H.Buckets.resize(Histogram::NumBuckets);
    for (size_t I = 0; I < KV.second.Buckets.size() && I < H.Buckets.size();
         ++I)
      H.Buckets[I] += KV.second.Buckets[I];
    H.Count += KV.second.Count;
    H.Sum += KV.second.Sum;
    H.Max = std::max(H.Max, KV.second.Max);
  }
}

uint64_t MetricsSnapshot::counter(const std::string &Name) const {
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

namespace {

// Metric names are our own identifiers (dotted lowercase ASCII), but escape
// defensively so the output is always valid JSON.
void appendJsonString(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

std::string prometheusName(const std::string &Name) {
  std::string Out = "leapfrog_";
  for (char C : Name)
    Out += (C == '.' || C == '-') ? '_' : C;
  return Out;
}

} // namespace

std::string MetricsSnapshot::toJson() const {
  std::string Out = "{\"counters\":{";
  bool First = true;
  for (const auto &KV : Counters) {
    if (!First)
      Out += ',';
    First = false;
    appendJsonString(Out, KV.first);
    Out += ':' + std::to_string(KV.second);
  }
  Out += "},\"gauges\":{";
  First = true;
  for (const auto &KV : Gauges) {
    if (!First)
      Out += ',';
    First = false;
    appendJsonString(Out, KV.first);
    Out += ":{\"value\":" + std::to_string(KV.second.Value) +
           ",\"peak\":" + std::to_string(KV.second.Peak) + "}";
  }
  Out += "},\"histograms\":{";
  First = true;
  for (const auto &KV : Histograms) {
    if (!First)
      Out += ',';
    First = false;
    appendJsonString(Out, KV.first);
    Out += ":{\"count\":" + std::to_string(KV.second.Count) +
           ",\"sum\":" + std::to_string(KV.second.Sum) +
           ",\"max\":" + std::to_string(KV.second.Max) +
           ",\"p50\":" +
           std::to_string(KV.second.quantileUpperBoundMicros(0.50)) +
           ",\"p95\":" +
           std::to_string(KV.second.quantileUpperBoundMicros(0.95)) +
           ",\"p99\":" +
           std::to_string(KV.second.quantileUpperBoundMicros(0.99)) +
           ",\"buckets\":[";
    for (size_t I = 0; I < KV.second.Buckets.size(); ++I) {
      if (I)
        Out += ',';
      Out += std::to_string(KV.second.Buckets[I]);
    }
    Out += "]}";
  }
  Out += "}}";
  return Out;
}

std::string MetricsSnapshot::toPrometheus() const {
  std::ostringstream Out;
  for (const auto &KV : Counters) {
    std::string Name = prometheusName(KV.first);
    Out << "# TYPE " << Name << " counter\n";
    Out << Name << " " << KV.second << "\n";
  }
  for (const auto &KV : Gauges) {
    std::string Name = prometheusName(KV.first);
    Out << "# TYPE " << Name << " gauge\n";
    Out << Name << " " << KV.second.Value << "\n";
    Out << "# TYPE " << Name << "_peak gauge\n";
    Out << Name << "_peak " << KV.second.Peak << "\n";
  }
  for (const auto &KV : Histograms) {
    std::string Name = prometheusName(KV.first);
    Out << "# TYPE " << Name << " histogram\n";
    uint64_t Cumulative = 0;
    for (size_t I = 0; I < KV.second.Buckets.size(); ++I) {
      Cumulative += KV.second.Buckets[I];
      if (I + 1 == KV.second.Buckets.size())
        Out << Name << "_bucket{le=\"+Inf\"} " << Cumulative << "\n";
      else
        Out << Name << "_bucket{le=\"" << Histogram::bucketBound(I) << "\"} "
            << Cumulative << "\n";
    }
    Out << Name << "_sum " << KV.second.Sum << "\n";
    Out << Name << "_count " << KV.second.Count << "\n";
  }
  return Out.str();
}

} // namespace obs
} // namespace leapfrog
