//===- obs/Clock.h - One clock abstraction for all timing -----------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Every *Micros stat field in the engine is fed from this header instead of
// ad-hoc std::chrono calls: obs::Clock wraps the steady clock, StopWatch is
// the start/elapsed idiom, and ScopedMicros accumulates a scope's duration
// into a caller-owned counter on destruction. Keeping the clock in one place
// is what lets the trace layer (Trace.h) share a single epoch with the stats
// the checker already reports, and keeps timing out of any decision path:
// nothing in here feeds back into the search.
//
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_OBS_CLOCK_H
#define LEAPFROG_OBS_CLOCK_H

#include <chrono>
#include <cstdint>

namespace leapfrog {
namespace obs {

/// The engine-wide monotonic clock. All durations are microseconds.
struct Clock {
  using TimePoint = std::chrono::steady_clock::time_point;

  static TimePoint now() { return std::chrono::steady_clock::now(); }

  static uint64_t microsBetween(TimePoint Start, TimePoint End) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(End - Start)
            .count());
  }

  static uint64_t microsSince(TimePoint Start) {
    return microsBetween(Start, now());
  }
};

/// Start/elapsed in one object: the pattern behind every WallMicros field.
class StopWatch {
public:
  StopWatch() : Start(Clock::now()) {}

  uint64_t elapsedMicros() const { return Clock::microsSince(Start); }

  Clock::TimePoint startedAt() const { return Start; }

private:
  Clock::TimePoint Start;
};

/// Adds the scope's duration to *Total (and maxes *Peak when given) on
/// destruction — the accumulate-into-a-stat-field idiom used by the solver
/// and checker timing sites.
class ScopedMicros {
public:
  explicit ScopedMicros(uint64_t &Total, uint64_t *Peak = nullptr)
      : Total(Total), Peak(Peak) {}

  ~ScopedMicros() {
    uint64_t Micros = Watch.elapsedMicros();
    Total += Micros;
    if (Peak && Micros > *Peak)
      *Peak = Micros;
  }

  ScopedMicros(const ScopedMicros &) = delete;
  ScopedMicros &operator=(const ScopedMicros &) = delete;

  uint64_t elapsedMicros() const { return Watch.elapsedMicros(); }

private:
  StopWatch Watch;
  uint64_t &Total;
  uint64_t *Peak;
};

} // namespace obs
} // namespace leapfrog

#endif // LEAPFROG_OBS_CLOCK_H
