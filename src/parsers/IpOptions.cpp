//===- IpOptions.cpp - Figures 11/12: variable-length IP options ----------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "Variable-length parsing" case study: a generic TLV parser for IP
/// options (Figure 11) versus a parser with a specialized fast path for
/// the Timestamp option, type 0x44, length 6 (Figure 12). Each option slot
/// reads a type byte and a length byte; lengths 1–6 route to a state that
/// extracts that many bytes into a scratch register and shifts it into the
/// 48-bit option value; types 0x00/0x01 with length 0 (End-of-Options /
/// No-Op) finish parsing.
///
/// The paper's prose uses two option slots ("up to two generic options"),
/// which matches Table 2's 30-state count; the figures print the 3-slot
/// instance. The slot count is a parameter here so both are available.
///
/// Two figure-level adjustments, matching the P4A typing rules:
/// - the figures reuse one `scratch` header at several widths; headers
///   have a fixed size (Figure 2: sz : H → N+), so we use scratch8..40;
/// - the figures' shift `v0 ← scratch ++ v0[7:47]` is one bit wide of the
///   48-bit header; the intended shift keeps widths exact:
///   `v0 := scratch8 ++ v0[8:47]`.
///
//===----------------------------------------------------------------------===//

#include "parsers/CaseStudies.h"

#include "p4a/Parser.h"

using namespace leapfrog;
using namespace leapfrog::parsers;

namespace {

/// Emits the scratch header declarations shared by all slots.
std::string scratchDecls() {
  std::string Src;
  for (size_t Bytes = 1; Bytes <= 5; ++Bytes)
    Src += "header scratch" + std::to_string(Bytes * 8) + " : " +
           std::to_string(Bytes * 8) + ";\n";
  return Src;
}

/// Emits one option slot. \p Slot is the slot index, \p Next the name of
/// the state to continue at ("accept" for the final slot), and
/// \p WithTimestamp adds Figure 12's specialized state.
std::string optionSlot(size_t Slot, const std::string &Next,
                       bool WithTimestamp) {
  std::string I = std::to_string(Slot);
  std::string Src;
  Src += "state parse_" + I + " {\n";
  Src += "  extract(T" + I + ", 8);\n";
  Src += "  extract(L" + I + ", 8);\n";
  Src += "  select(T" + I + "[0:7], L" + I + "[0:7]) {\n";
  Src += "    (0x00, 0x00) => accept\n";
  Src += "    (0x01, 0x00) => accept\n";
  if (WithTimestamp)
    Src += "    (0x44, 0x06) => parse_stamp" + I + "\n";
  for (size_t Bytes = 1; Bytes <= 6; ++Bytes)
    Src += "    (_, 0x0" + std::to_string(Bytes) + ") => parse_v" + I +
           std::to_string(Bytes) + "\n";
  Src += "  }\n}\n";

  if (WithTimestamp) {
    // Figure 12: pointer, overflow, flags, and one 32-bit timestamp.
    Src += "state parse_stamp" + I + " {\n";
    Src += "  extract(ptr" + I + ", 8);\n";
    Src += "  extract(over" + I + ", 4);\n";
    Src += "  extract(flag" + I + ", 4);\n";
    Src += "  extract(time" + I + ", 32);\n";
    Src += "  goto " + Next + "\n}\n";
  }

  for (size_t Bytes = 1; Bytes <= 6; ++Bytes) {
    size_t Bits = Bytes * 8;
    Src += "state parse_v" + I + std::to_string(Bytes) + " {\n";
    if (Bytes == 6) {
      Src += "  extract(v" + I + ", 48);\n";
    } else {
      Src += "  extract(scratch" + std::to_string(Bits) + ", " +
             std::to_string(Bits) + ");\n";
      Src += "  v" + I + " := scratch" + std::to_string(Bits) + " ++ v" + I +
             "[" + std::to_string(Bits) + ":47];\n";
    }
    Src += "  goto " + Next + "\n}\n";
  }
  return Src;
}

std::string ipOptionsSource(size_t NumOptions, bool WithTimestamp) {
  assert(NumOptions >= 1 && "at least one option slot");
  std::string Src = scratchDecls();
  for (size_t Slot = 0; Slot < NumOptions; ++Slot)
    Src += "header v" + std::to_string(Slot) + " : 48;\n";
  for (size_t Slot = 0; Slot < NumOptions; ++Slot) {
    std::string Next = Slot + 1 < NumOptions
                           ? "parse_" + std::to_string(Slot + 1)
                           : "accept";
    Src += optionSlot(Slot, Next, WithTimestamp);
  }
  return Src;
}

} // namespace

p4a::Automaton parsers::ipOptionsGeneric(size_t NumOptions) {
  return p4a::parseAutomatonOrDie(
      ipOptionsSource(NumOptions, /*WithTimestamp=*/false));
}

p4a::Automaton parsers::ipOptionsTimestamp(size_t NumOptions) {
  return p4a::parseAutomatonOrDie(
      ipOptionsSource(NumOptions, /*WithTimestamp=*/true));
}
