//===- Rfc.h - RFC reference parser library ---------------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reference implementations of standard protocol headers, realizing the
/// paper's closing future-work paragraph:
///
///   "one could imagine writing a library of reference implementations
///    for protocols defined in RFCs, and checking that real-world
///    implementations conform to those standards."
///
/// Each addX() function appends one protocol's states to a surface
/// program (frontend/Surface.h), with explicit next-state dispatch so
/// protocols compose into arbitrary stacks. Field layouts follow the
/// RFCs; multi-byte fields are big-endian, bit 0 of a header is the first
/// bit on the wire, and variable-length headers (IPv4 options, TCP
/// options, GRE checksum) branch to per-length extraction states — the
/// idiom of the paper's Figures 11/12.
///
/// The conformance story: compose the RFC states into a reference parser,
/// then use the equivalence checker to prove a vendor's hand-optimized
/// parser accepts exactly the same packets (see examples/rfc_conformance).
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_PARSERS_RFC_H
#define LEAPFROG_PARSERS_RFC_H

#include "frontend/Surface.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace leapfrog {
namespace rfc {

using frontend::SurfaceProgram;
using frontend::SurfaceTarget;

/// Encodes \p Value as \p Width bits, most significant bit first — the
/// on-the-wire order all addX() dispatch patterns use.
Bitvector beBits(uint64_t Value, size_t Width);

/// A protocol-number dispatch entry: field value → transition target.
struct Dispatch {
  uint64_t Value;
  SurfaceTarget Target;
};

/// Ethernet II (RFC 894 framing): 48-bit destination and source MAC plus
/// the 16-bit EtherType, 112 bits total in header \p Header. Dispatches
/// on the EtherType; non-matching packets go to \p Default.
void addEthernet(SurfaceProgram &P, const std::string &State,
                 const std::string &Header,
                 const std::vector<Dispatch> &ByEtherType,
                 SurfaceTarget Default = SurfaceTarget::reject());

/// IEEE 802.1Q VLAN tag: 16-bit TCI plus the 16-bit inner EtherType, 32
/// bits in \p Header. Dispatches on the inner EtherType.
void addVlan(SurfaceProgram &P, const std::string &State,
             const std::string &Header,
             const std::vector<Dispatch> &ByEtherType,
             SurfaceTarget Default = SurfaceTarget::reject());

/// IPv4 (RFC 791): 160-bit fixed header in \p Header. The 4-bit IHL field
/// selects one of eleven per-length option states (IHL 5 = no options …
/// IHL 15 = 40 option bytes, extracted into <Header>_opt<i>), all of which
/// then dispatch on the 8-bit Protocol field. IHL < 5 rejects, per the
/// RFC's minimum header length.
void addIpv4(SurfaceProgram &P, const std::string &State,
             const std::string &Header,
             const std::vector<Dispatch> &ByProtocol,
             SurfaceTarget Default = SurfaceTarget::reject());

/// IPv6 (RFC 8200): 320-bit fixed header; dispatches on the 8-bit Next
/// Header field (extension headers are the caller's dispatch targets).
void addIpv6(SurfaceProgram &P, const std::string &State,
             const std::string &Header,
             const std::vector<Dispatch> &ByNextHeader,
             SurfaceTarget Default = SurfaceTarget::reject());

/// UDP (RFC 768): 64-bit header, then \p Next (default accept).
void addUdp(SurfaceProgram &P, const std::string &State,
            const std::string &Header,
            SurfaceTarget Next = SurfaceTarget::accept());

/// TCP (RFC 9293): 160-bit fixed header; the 4-bit Data Offset selects a
/// per-length option state (offset 5–15, extracted into <Header>_opt<i>);
/// offsets below 5 reject. All paths continue to \p Next.
void addTcp(SurfaceProgram &P, const std::string &State,
            const std::string &Header,
            SurfaceTarget Next = SurfaceTarget::accept());

/// ICMP (RFC 792): 64-bit header (type, code, checksum, rest), then \p Next.
void addIcmp(SurfaceProgram &P, const std::string &State,
             const std::string &Header,
             SurfaceTarget Next = SurfaceTarget::accept());

/// ARP (RFC 826) for IPv4-over-Ethernet: 224 bits, then \p Next.
void addArp(SurfaceProgram &P, const std::string &State,
            const std::string &Header,
            SurfaceTarget Next = SurfaceTarget::accept());

/// GRE (RFC 2784): 32-bit base header; when the C flag (bit 0) is set, a
/// further 32 bits of checksum+reserved are extracted into
/// <Header>_cksum. Dispatches on the 16-bit Protocol Type.
void addGre(SurfaceProgram &P, const std::string &State,
            const std::string &Header,
            const std::vector<Dispatch> &ByProtocolType,
            SurfaceTarget Default = SurfaceTarget::reject());

/// VXLAN (RFC 7348): 64-bit header, then \p Next (the inner Ethernet).
void addVxlan(SurfaceProgram &P, const std::string &State,
              const std::string &Header,
              SurfaceTarget Next = SurfaceTarget::accept());

/// Well-known field values used by the dispatch tables.
namespace ethertype {
constexpr uint64_t Ipv4 = 0x0800;
constexpr uint64_t Arp = 0x0806;
constexpr uint64_t Vlan = 0x8100;
constexpr uint64_t Ipv6 = 0x86dd;
constexpr uint64_t Mpls = 0x8847;
} // namespace ethertype

namespace ipproto {
constexpr uint64_t Icmp = 1;
constexpr uint64_t Tcp = 6;
constexpr uint64_t Udp = 17;
constexpr uint64_t Gre = 47;
} // namespace ipproto

/// A ready-made composition: Ethernet → {ARP | (optional VLAN) → {IPv4 |
/// IPv6} → {TCP | UDP | ICMP}} — a typical enterprise edge stack built
/// purely from the RFC reference states. Entry state: "eth".
SurfaceProgram standardEnterpriseStack();

} // namespace rfc
} // namespace leapfrog

#endif // LEAPFROG_PARSERS_RFC_H
