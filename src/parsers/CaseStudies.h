//===- CaseStudies.h - All evaluation parsers -------------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for every P4 automaton of the paper's evaluation (§7,
/// Table 2, Figures 1, 7, 9–12, and the parser-gen scenarios of §7.2).
/// Each parser is transcribed in the textual DSL (p4a/Parser.h) so the
/// source can be compared against the paper's figures line by line; the
/// sources are exposed too so tests can exercise the round trip.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_PARSERS_CASESTUDIES_H
#define LEAPFROG_PARSERS_CASESTUDIES_H

#include "p4a/Syntax.h"

#include <string>
#include <vector>

namespace leapfrog {
namespace parsers {

// --- Figure 1: MPLS speculative loop ("Speculative loop" in Table 2) ---

/// Reference MPLS/UDP parser (states q1, q2).
p4a::Automaton mplsReference();
/// Vectorized parser extracting two labels at a time (states q3–q5).
p4a::Automaton mplsVectorized();

/// The Figure 1 pair scaled to an arbitrary label width: labels are
/// \p LabelBits wide (≥ 2) with the bottom-of-stack marker in the middle
/// bit, and the UDP payload is 2·LabelBits. At LabelBits = 32 these are
/// exactly mplsReference()/mplsVectorized(). Used by the crossover
/// benchmark to scale the configuration space while keeping the control
/// structure fixed.
p4a::Automaton mplsReferenceScaled(size_t LabelBits);
p4a::Automaton mplsVectorizedScaled(size_t LabelBits);

// --- Figure 7: stylized IP + TCP/UDP ("State Rearrangement") ---

/// Reference parser with separate UDP/TCP suffix states.
p4a::Automaton rearrangeReference();
/// Optimized parser extracting the shared 32-bit prefix eagerly.
p4a::Automaton rearrangeCombined();

// --- Figure 9: Ethernet + optional VLAN ("Header initialization") ---

/// Parser assigning a default VLAN tag when none is present; checked for
/// initial-store independence by self-comparison.
p4a::Automaton vlanParser();
/// A deliberately buggy variant that forgets the default assignment —
/// its acceptance *does* depend on the uninitialized vlan header, so the
/// self-comparison must fail (used by tests and the negative bench rows).
p4a::Automaton vlanParserBuggy();

// --- Figure 10: sloppy vs strict Ethernet/IP ("External filtering" and
// --- "Relational verification") ---

/// Lenient parser: any non-IPv4 Ethernet type is treated as IPv6.
p4a::Automaton sloppyEthernetIp();
/// Strict parser: unknown Ethernet types are rejected.
p4a::Automaton strictEthernetIp();

// --- Figures 11/12: IP options ("Variable-length parsing") ---

/// Generic TLV parser handling up to \p NumOptions options of 0–6 bytes.
/// The paper's Figure 11 is the 3-option instance; smaller instances keep
/// tests fast.
p4a::Automaton ipOptionsGeneric(size_t NumOptions = 3);
/// Specialized parser with a dedicated Timestamp-option state per slot
/// (Figure 12).
p4a::Automaton ipOptionsTimestamp(size_t NumOptions = 3);

// --- §7.2: parser-gen scenarios (Gibb et al. 2013) ---

/// Edge router parser: Ethernet, 2×VLAN, 2×MPLS, IPv4(+options), IPv6,
/// GRE, TCP, UDP, ICMP.
p4a::Automaton gibbEdge();
/// Core (service-provider) router parser: Ethernet, 2×MPLS, Ethernet-in-
/// MPLS, IPv4/IPv6, TCP/UDP.
p4a::Automaton gibbServiceProvider();
/// Datacenter top-of-rack parser: Ethernet, VLAN, IPv4/IPv6, NVGRE,
/// VXLAN, inner Ethernet, TCP/UDP.
p4a::Automaton gibbDatacenter();
/// Enterprise campus parser: Ethernet, VLAN, IPv4/IPv6, ARP, RCP,
/// TCP/UDP/ICMP.
p4a::Automaton gibbEnterprise();

/// A named (automaton, start state) pair plus its role in Table 2.
struct CaseStudy {
  std::string Name;       ///< Table 2 row name.
  std::string Category;   ///< "Utility" or "Applicability".
  p4a::Automaton Left;
  std::string LeftStart;
  p4a::Automaton Right;
  std::string RightStart;
};

/// All Table 2 self-comparison / equivalence pairs buildable without the
/// pgen substrate (the Translation Validation row lives in pgen/).
std::vector<CaseStudy> allCaseStudies();

} // namespace parsers
} // namespace leapfrog

#endif // LEAPFROG_PARSERS_CASESTUDIES_H
