//===- SmallParsers.cpp - Figures 1, 7, 9, 10 -----------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The utility case-study parsers, transcribed from the paper's figures.
/// Where a figure contains an obvious typo (noted inline) we implement the
/// semantics the accompanying prose describes.
///
//===----------------------------------------------------------------------===//

#include "parsers/CaseStudies.h"

#include "p4a/Parser.h"

using namespace leapfrog;
using namespace leapfrog::parsers;

p4a::Automaton parsers::mplsReference() {
  // Figure 1, left: one MPLS label at a time; bit 23 of the label is the
  // bottom-of-stack marker.
  return p4a::parseAutomatonOrDie(R"(
    state q1 {
      extract(mpls, 32);
      select(mpls[23:23]) {
        0 => q1
        1 => q2
      }
    }
    state q2 {
      extract(udp, 64);
      goto accept
    }
  )");
}

p4a::Automaton parsers::mplsVectorized() {
  // Figure 1, right: two labels per iteration; overshooting by one label
  // re-marshals the surplus 32 bits into the UDP header (state q5).
  return p4a::parseAutomatonOrDie(R"(
    state q3 {
      extract(old, 32);
      extract(new, 32);
      select(old[23:23], new[23:23]) {
        (0, 0) => q3
        (0, 1) => q4
        (1, _) => q5
      }
    }
    state q4 {
      extract(udp, 64);
      goto accept
    }
    state q5 {
      extract(tmp, 32);
      udp := new ++ tmp;
      goto accept
    }
  )");
}

p4a::Automaton parsers::rearrangeReference() {
  // Figure 7, left: a stylized IP header; bits 40–43 select UDP vs TCP.
  return p4a::parseAutomatonOrDie(R"(
    state parse_ip {
      extract(ip, 64);
      select(ip[40:43]) {
        0001 => parse_udp
        0000 => parse_tcp
      }
    }
    state parse_udp {
      extract(udp, 32);
      goto accept
    }
    state parse_tcp {
      extract(tcp, 64);
      goto accept
    }
  )");
}

p4a::Automaton parsers::rearrangeCombined() {
  // Figure 7, right: the 32-bit prefix shared by UDP and TCP is extracted
  // eagerly; only the TCP-specific suffix needs another state.
  return p4a::parseAutomatonOrDie(R"(
    state parse_combined {
      extract(ip, 64);
      extract(pref, 32);
      select(ip[40:43]) {
        0001 => accept
        0000 => parse_suff
      }
    }
    state parse_suff {
      extract(suff, 32);
      goto accept
    }
  )");
}

p4a::Automaton parsers::vlanParser() {
  // Figure 9: Ethernet with an optional VLAN tag; a missing tag gets the
  // default value so parse_udp never branches on an uninitialized header.
  // (The figure writes `vlan := 0x0000`, a 16-bit literal for the 32-bit
  // header; we write the intended 32-bit zero.)
  return p4a::parseAutomatonOrDie(R"(
    header vlan : 32;
    state parse_eth {
      extract(ether, 112);
      select(ether[0:0]) {
        0 => default_vlan
        1 => parse_vlan
      }
    }
    state default_vlan {
      vlan := 0x00000000;
      extract(ip, 160);
      goto parse_udp
    }
    state parse_vlan {
      extract(vlan, 32);
      goto parse_ip
    }
    state parse_ip {
      extract(ip, 160);
      goto parse_udp
    }
    state parse_udp {
      extract(udp, 64);
      select(vlan[0:3]) {
        1111 => reject
        _ => accept
      }
    }
  )");
}

p4a::Automaton parsers::vlanParserBuggy() {
  // The bug the Header Initialization study exists to catch: the default
  // path forgets to assign vlan, so parse_udp's branch reads whatever the
  // initial store contained and acceptance depends on it.
  return p4a::parseAutomatonOrDie(R"(
    header vlan : 32;
    state parse_eth {
      extract(ether, 112);
      select(ether[0:0]) {
        0 => default_vlan
        1 => parse_vlan
      }
    }
    state default_vlan {
      extract(ip, 160);
      goto parse_udp
    }
    state parse_vlan {
      extract(vlan, 32);
      goto parse_ip
    }
    state parse_ip {
      extract(ip, 160);
      goto parse_udp
    }
    state parse_udp {
      extract(udp, 64);
      select(vlan[0:3]) {
        1111 => reject
        _ => accept
      }
    }
  )");
}

p4a::Automaton parsers::sloppyEthernetIp() {
  // Figure 10, left, per the prose: "a lenient parser that assumes the
  // input packet is IPv6 if it is not IPv4". (The figure's extract names
  // are swapped; widths 288/128 are kept as printed so the bit counts
  // match Table 2's Total of 1056.)
  return p4a::parseAutomatonOrDie(R"(
    state parse_eth {
      extract(ether, 112);
      select(ether[96:111]) {
        0x8600 => parse_ipv4
        _      => parse_ipv6
      }
    }
    state parse_ipv6 {
      extract(ipv6, 288);
      goto accept
    }
    state parse_ipv4 {
      extract(ipv4, 128);
      goto accept
    }
  )");
}

p4a::Automaton parsers::strictEthernetIp() {
  // Figure 10, right: unknown Ethernet types are rejected outright.
  return p4a::parseAutomatonOrDie(R"(
    state parse_eth {
      extract(ether, 112);
      select(ether[96:111]) {
        0x86dd => parse_ipv6
        0x8600 => parse_ipv4
        _      => reject
      }
    }
    state parse_ipv6 {
      extract(ipv6, 288);
      goto accept
    }
    state parse_ipv4 {
      extract(ipv4, 128);
      goto accept
    }
  )");
}
