//===- Rfc.cpp - RFC reference parser library --------------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "parsers/Rfc.h"

using namespace leapfrog;
using namespace leapfrog::rfc;
using namespace leapfrog::frontend;

Bitvector rfc::beBits(uint64_t Value, size_t Width) {
  // Width may exceed 64 (e.g. a 96-bit all-zero field); bits beyond the
  // value's 64 are zero, and shifting by ≥ 64 is UB, so clamp explicitly.
  Bitvector Out(Width);
  for (size_t I = 0; I < Width; ++I) {
    size_t Shift = Width - 1 - I;
    Out.setBit(I, Shift < 64 ? (Value >> Shift) & 1 : 0);
  }
  return Out;
}

namespace {

p4a::Pattern pat(uint64_t Value, size_t Width) {
  return p4a::Pattern::exact(beBits(Value, Width));
}

/// A select over one field slice with a default case.
SurfaceTransition dispatchOn(SExprRef Field, size_t Width,
                             const std::vector<Dispatch> &Table,
                             const SurfaceTarget &Default) {
  std::vector<SurfaceCase> Cases;
  for (const Dispatch &D : Table)
    Cases.push_back(SurfaceCase{{pat(D.Value, Width)}, D.Target});
  Cases.push_back(SurfaceCase{{p4a::Pattern::wildcard()}, Default});
  return SurfaceTransition::mkSelect({std::move(Field)}, std::move(Cases));
}

SExprRef slice(const std::string &Header, size_t Lo, size_t Hi) {
  return SExpr::mkSlice(SExpr::mkHeader(Header), Lo, Hi);
}

} // namespace

void rfc::addEthernet(SurfaceProgram &P, const std::string &State,
                      const std::string &Header,
                      const std::vector<Dispatch> &ByEtherType,
                      SurfaceTarget Default) {
  // dst(48) src(48) ethertype(16) — RFC 894 framing.
  P.addHeader(Header, 112);
  SurfaceState S;
  S.Name = State;
  S.Ops = {SurfaceOp::extract(Header)};
  S.Tz = dispatchOn(slice(Header, 96, 111), 16, ByEtherType, Default);
  P.addState(std::move(S));
}

void rfc::addVlan(SurfaceProgram &P, const std::string &State,
                  const std::string &Header,
                  const std::vector<Dispatch> &ByEtherType,
                  SurfaceTarget Default) {
  // TCI(16) inner-ethertype(16) — IEEE 802.1Q.
  P.addHeader(Header, 32);
  SurfaceState S;
  S.Name = State;
  S.Ops = {SurfaceOp::extract(Header)};
  S.Tz = dispatchOn(slice(Header, 16, 31), 16, ByEtherType, Default);
  P.addState(std::move(S));
}

void rfc::addIpv4(SurfaceProgram &P, const std::string &State,
                  const std::string &Header,
                  const std::vector<Dispatch> &ByProtocol,
                  SurfaceTarget Default) {
  // version(4) ihl(4) tos(8) len(16) id(16) flags+frag(16) ttl(8)
  // proto(8) cksum(16) src(32) dst(32) = 160 bits — RFC 791 §3.1.
  P.addHeader(Header, 160);
  SurfaceState S;
  S.Name = State;
  S.Ops = {SurfaceOp::extract(Header)};

  // Two-level dispatch fused into one select: (IHL, Protocol). IHL = 5
  // has no options, so its cases dispatch on the protocol immediately
  // (the model requires every state to extract, ruling out an empty
  // pass-through state); IHL 6–15 branch to per-length option states.
  // IHL < 5 violates the RFC minimum and falls through to reject.
  std::vector<SurfaceCase> Cases;
  for (const Dispatch &D : ByProtocol)
    Cases.push_back(SurfaceCase{{pat(5, 4), pat(D.Value, 8)}, D.Target});
  Cases.push_back(
      SurfaceCase{{pat(5, 4), p4a::Pattern::wildcard()}, Default});
  for (uint64_t Ihl = 6; Ihl <= 15; ++Ihl) {
    std::string OptState = State + "_opt" + std::to_string(Ihl);
    Cases.push_back(SurfaceCase{{pat(Ihl, 4), p4a::Pattern::wildcard()},
                                SurfaceTarget::state(OptState)});

    std::string OptHeader = Header + "_opt" + std::to_string(Ihl);
    P.addHeader(OptHeader, (Ihl - 5) * 32);
    SurfaceState Opt;
    Opt.Name = OptState;
    Opt.Ops = {SurfaceOp::extract(OptHeader)};
    Opt.Tz = dispatchOn(slice(Header, 72, 79), 8, ByProtocol, Default);
    P.addState(std::move(Opt));
  }
  Cases.push_back(SurfaceCase{
      {p4a::Pattern::wildcard(), p4a::Pattern::wildcard()},
      SurfaceTarget::reject()});
  S.Tz = SurfaceTransition::mkSelect(
      {slice(Header, 4, 7), slice(Header, 72, 79)}, std::move(Cases));
  P.addState(std::move(S));
}

void rfc::addIpv6(SurfaceProgram &P, const std::string &State,
                  const std::string &Header,
                  const std::vector<Dispatch> &ByNextHeader,
                  SurfaceTarget Default) {
  // version(4) tc(8) flow(20) len(16) next(8) hops(8) src(128) dst(128)
  // = 320 bits — RFC 8200 §3.
  P.addHeader(Header, 320);
  SurfaceState S;
  S.Name = State;
  S.Ops = {SurfaceOp::extract(Header)};
  S.Tz = dispatchOn(slice(Header, 48, 55), 8, ByNextHeader, Default);
  P.addState(std::move(S));
}

void rfc::addUdp(SurfaceProgram &P, const std::string &State,
                 const std::string &Header, SurfaceTarget Next) {
  // srcport(16) dstport(16) len(16) cksum(16) — RFC 768.
  P.addHeader(Header, 64);
  SurfaceState S;
  S.Name = State;
  S.Ops = {SurfaceOp::extract(Header)};
  S.Tz = SurfaceTransition::mkGoto(std::move(Next));
  P.addState(std::move(S));
}

void rfc::addTcp(SurfaceProgram &P, const std::string &State,
                 const std::string &Header, SurfaceTarget Next) {
  // srcport(16) dstport(16) seq(32) ack(32) offset(4) rsvd(4) flags(8)
  // window(16) cksum(16) urgent(16) = 160 bits — RFC 9293 §3.1.
  P.addHeader(Header, 160);
  SurfaceState S;
  S.Name = State;
  S.Ops = {SurfaceOp::extract(Header)};

  std::vector<SurfaceCase> Cases;
  Cases.push_back(SurfaceCase{{pat(5, 4)}, Next});
  for (uint64_t Off = 6; Off <= 15; ++Off) {
    std::string OptState = State + "_opt" + std::to_string(Off);
    Cases.push_back(
        SurfaceCase{{pat(Off, 4)}, SurfaceTarget::state(OptState)});

    std::string OptHeader = Header + "_opt" + std::to_string(Off);
    P.addHeader(OptHeader, (Off - 5) * 32);
    SurfaceState Opt;
    Opt.Name = OptState;
    Opt.Ops = {SurfaceOp::extract(OptHeader)};
    Opt.Tz = SurfaceTransition::mkGoto(Next);
    P.addState(std::move(Opt));
  }
  // Data offsets 0–4 are malformed (the fixed header alone is 5 words).
  Cases.push_back(
      SurfaceCase{{p4a::Pattern::wildcard()}, SurfaceTarget::reject()});
  S.Tz = SurfaceTransition::mkSelect({slice(Header, 96, 99)},
                                     std::move(Cases));
  P.addState(std::move(S));
}

void rfc::addIcmp(SurfaceProgram &P, const std::string &State,
                  const std::string &Header, SurfaceTarget Next) {
  // type(8) code(8) cksum(16) rest(32) — RFC 792.
  P.addHeader(Header, 64);
  SurfaceState S;
  S.Name = State;
  S.Ops = {SurfaceOp::extract(Header)};
  S.Tz = SurfaceTransition::mkGoto(std::move(Next));
  P.addState(std::move(S));
}

void rfc::addArp(SurfaceProgram &P, const std::string &State,
                 const std::string &Header, SurfaceTarget Next) {
  // htype(16) ptype(16) hlen(8) plen(8) oper(16) sha(48) spa(32)
  // tha(48) tpa(32) = 224 bits — RFC 826 for IPv4-over-Ethernet.
  P.addHeader(Header, 224);
  SurfaceState S;
  S.Name = State;
  S.Ops = {SurfaceOp::extract(Header)};
  S.Tz = SurfaceTransition::mkGoto(std::move(Next));
  P.addState(std::move(S));
}

void rfc::addGre(SurfaceProgram &P, const std::string &State,
                 const std::string &Header,
                 const std::vector<Dispatch> &ByProtocolType,
                 SurfaceTarget Default) {
  // C(1) reserved(12) version(3) protocol(16) = 32 bits — RFC 2784 §2.1;
  // C = 1 appends checksum(16) + reserved1(16).
  P.addHeader(Header, 32);
  SurfaceState S;
  S.Name = State;
  S.Ops = {SurfaceOp::extract(Header)};

  std::string CkState = State + "_cksum";
  std::string CkHeader = Header + "_cksum";
  P.addHeader(CkHeader, 32);

  std::vector<SurfaceCase> Cases;
  for (const Dispatch &D : ByProtocolType)
    Cases.push_back(SurfaceCase{{pat(0, 1), pat(D.Value, 16)}, D.Target});
  Cases.push_back(
      SurfaceCase{{pat(0, 1), p4a::Pattern::wildcard()}, Default});
  Cases.push_back(SurfaceCase{
      {pat(1, 1), p4a::Pattern::wildcard()}, SurfaceTarget::state(CkState)});
  S.Tz = SurfaceTransition::mkSelect(
      {slice(Header, 0, 0), slice(Header, 16, 31)}, std::move(Cases));
  P.addState(std::move(S));

  SurfaceState Ck;
  Ck.Name = CkState;
  Ck.Ops = {SurfaceOp::extract(CkHeader)};
  Ck.Tz = dispatchOn(slice(Header, 16, 31), 16, ByProtocolType, Default);
  P.addState(std::move(Ck));
}

void rfc::addVxlan(SurfaceProgram &P, const std::string &State,
                   const std::string &Header, SurfaceTarget Next) {
  // flags(8) reserved(24) vni(24) reserved(8) = 64 bits — RFC 7348 §5.
  P.addHeader(Header, 64);
  SurfaceState S;
  S.Name = State;
  S.Ops = {SurfaceOp::extract(Header)};
  S.Tz = SurfaceTransition::mkGoto(std::move(Next));
  P.addState(std::move(S));
}

SurfaceProgram rfc::standardEnterpriseStack() {
  SurfaceProgram P;
  auto St = [](const char *Name) { return SurfaceTarget::state(Name); };

  addEthernet(P, "eth", "ether",
              {{ethertype::Arp, St("arp")},
               {ethertype::Vlan, St("vlan")},
               {ethertype::Ipv4, St("ipv4")},
               {ethertype::Ipv6, St("ipv6")}});
  addVlan(P, "vlan", "vlan_tag",
          {{ethertype::Ipv4, St("ipv4")}, {ethertype::Ipv6, St("ipv6")}});
  addArp(P, "arp", "arp_hdr");
  std::vector<Dispatch> L4 = {{ipproto::Tcp, St("tcp")},
                              {ipproto::Udp, St("udp")},
                              {ipproto::Icmp, St("icmp")}};
  addIpv4(P, "ipv4", "ip4", L4);
  addIpv6(P, "ipv6", "ip6", L4);
  addTcp(P, "tcp", "tcp_hdr");
  addUdp(P, "udp", "udp_hdr");
  addIcmp(P, "icmp", "icmp_hdr");
  P.setEntry("eth");
  return P;
}
