//===- Registry.cpp - Case-study registry ---------------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "parsers/CaseStudies.h"

using namespace leapfrog;
using namespace leapfrog::parsers;

std::vector<CaseStudy> parsers::allCaseStudies() {
  std::vector<CaseStudy> Studies;

  Studies.push_back({"State Rearrangement", "Utility", rearrangeReference(),
                     "parse_ip", rearrangeCombined(), "parse_combined"});
  // Two option slots per the prose ("up to two generic options"), which
  // also matches Table 2's 30-state count.
  Studies.push_back({"Variable-length parsing", "Utility",
                     ipOptionsGeneric(2), "parse_0", ipOptionsTimestamp(2),
                     "parse_0"});
  Studies.push_back({"Header initialization", "Utility", vlanParser(),
                     "parse_eth", vlanParser(), "parse_eth"});
  Studies.push_back({"Speculative loop", "Utility", mplsReference(), "q1",
                     mplsVectorized(), "q3"});
  Studies.push_back({"Relational verification", "Utility",
                     sloppyEthernetIp(), "parse_eth", strictEthernetIp(),
                     "parse_eth"});
  Studies.push_back({"External filtering", "Utility", sloppyEthernetIp(),
                     "parse_eth", strictEthernetIp(), "parse_eth"});

  Studies.push_back({"Edge", "Applicability", gibbEdge(), "eth", gibbEdge(),
                     "eth"});
  Studies.push_back({"Service Provider", "Applicability",
                     gibbServiceProvider(), "eth", gibbServiceProvider(),
                     "eth"});
  Studies.push_back({"Datacenter", "Applicability", gibbDatacenter(), "eth",
                     gibbDatacenter(), "eth"});
  Studies.push_back({"Enterprise", "Applicability", gibbEnterprise(), "eth",
                     gibbEnterprise(), "eth"});
  return Studies;
}
