//===- Scaled.cpp - Width-parameterized case-study families ----------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Figure 1 MPLS pair with the label width as a parameter. The paper's
/// scaling argument (§4) is that configuration-space size is exponential
/// in header bits while the symbolic representation is not; these families
/// let the benchmarks sweep that axis directly.
///
//===----------------------------------------------------------------------===//

#include "parsers/CaseStudies.h"

#include "p4a/Parser.h"

#include <cassert>
#include <string>

using namespace leapfrog;
using namespace leapfrog::parsers;

namespace {

std::string slice(size_t Bit) {
  return "[" + std::to_string(Bit) + ":" + std::to_string(Bit) + "]";
}

} // namespace

p4a::Automaton parsers::mplsReferenceScaled(size_t LabelBits) {
  assert(LabelBits >= 2 && "need at least a marker bit and a payload bit");
  size_t Marker = LabelBits / 2;
  std::string W = std::to_string(LabelBits);
  std::string W2 = std::to_string(2 * LabelBits);
  return p4a::parseAutomatonOrDie(
      "state q1 {\n"
      "  extract(mpls, " + W + ");\n"
      "  select(mpls" + slice(Marker) + ") {\n"
      "    0 => q1\n"
      "    1 => q2\n"
      "  }\n"
      "}\n"
      "state q2 {\n"
      "  extract(udp, " + W2 + ");\n"
      "  goto accept\n"
      "}\n");
}

p4a::Automaton parsers::mplsVectorizedScaled(size_t LabelBits) {
  assert(LabelBits >= 2 && "need at least a marker bit and a payload bit");
  size_t Marker = LabelBits / 2;
  std::string W = std::to_string(LabelBits);
  std::string W2 = std::to_string(2 * LabelBits);
  return p4a::parseAutomatonOrDie(
      "state q3 {\n"
      "  extract(old, " + W + ");\n"
      "  extract(new, " + W + ");\n"
      "  select(old" + slice(Marker) + ", new" + slice(Marker) + ") {\n"
      "    (0, 0) => q3\n"
      "    (0, 1) => q4\n"
      "    (1, _) => q5\n"
      "  }\n"
      "}\n"
      "state q4 {\n"
      "  extract(udp, " + W2 + ");\n"
      "  goto accept\n"
      "}\n"
      "state q5 {\n"
      "  extract(tmp, " + W + ");\n"
      "  udp := new ++ tmp;\n"
      "  goto accept\n"
      "}\n");
}
