//===- Gibb.cpp - parser-gen scenario parsers (§7.2) ----------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Re-encodings of the four deployment scenarios from "Design Principles
/// for Packet Parsers" (Gibb et al., ANCS 2013), which the paper uses for
/// its Applicability studies (§7.2). The authors' exact P4A encodings are
/// not published with the paper, so these follow the scenario protocol
/// lists from the parser-gen paper, sized so the per-scenario state counts
/// match Table 2 (self-comparison doubles them: Edge 2×14 = 28,
/// Service Provider 2×11 = 22, Datacenter 2×15 = 30, Enterprise
/// 2×11 = 22). See DESIGN.md §2 for the substitution note.
///
/// Protocol field widths are the real ones (Ethernet 14 B, VLAN tag 4 B,
/// MPLS label 4 B, IPv4 20 B + options, IPv6 40 B, GRE 4 B, VXLAN/NVGRE
/// 8 B, TCP 20 B, UDP/ICMP 8 B, ARP 28 B, RCP 12 B).
///
//===----------------------------------------------------------------------===//

#include "parsers/CaseStudies.h"

#include "p4a/Parser.h"

using namespace leapfrog;
using namespace leapfrog::parsers;

p4a::Automaton parsers::gibbEdge() {
  // Gateway router: VLAN (up to 2 tags), MPLS (up to 2 labels), IPv4 with
  // up to two option words, IPv6, GRE tunnels.
  return p4a::parseAutomatonOrDie(R"(
    state eth {
      extract(eth_addrs, 96);
      extract(eth_type, 16);
      select(eth_type[0:15]) {
        0x8100 => vlan0
        0x9100 => vlan0
        0x8847 => mpls0
        0x0800 => ipv4
        0x86dd => ipv6
      }
    }
    state vlan0 {
      extract(vlan0_tci, 16);
      extract(vlan0_type, 16);
      select(vlan0_type[0:15]) {
        0x8100 => vlan1
        0x0800 => ipv4
        0x86dd => ipv6
      }
    }
    state vlan1 {
      extract(vlan1_tci, 16);
      extract(vlan1_type, 16);
      select(vlan1_type[0:15]) {
        0x0800 => ipv4
        0x86dd => ipv6
      }
    }
    state mpls0 {
      extract(mpls0_lbl, 32);
      select(mpls0_lbl[23:23]) {
        0 => mpls1
        1 => ipv4
      }
    }
    state mpls1 {
      extract(mpls1_lbl, 32);
      select(mpls1_lbl[23:23]) {
        1 => ipv4
      }
    }
    state ipv4 {
      extract(ipv4_ver, 4);
      extract(ipv4_ihl, 4);
      extract(ipv4_mid, 64);
      extract(ipv4_proto, 8);
      extract(ipv4_tail, 80);
      select(ipv4_ihl[0:3], ipv4_proto[0:7]) {
        (0110, _)    => ipv4_opt1
        (0111, _)    => ipv4_opt2
        (0101, 0x06) => tcp
        (0101, 0x11) => udp
        (0101, 0x01) => icmp
        (0101, 0x2f) => gre
      }
    }
    state ipv4_opt1 {
      extract(ipv4_optw1, 32);
      select(ipv4_proto[0:7]) {
        0x06 => tcp
        0x11 => udp
        0x01 => icmp
        0x2f => gre
      }
    }
    state ipv4_opt2 {
      extract(ipv4_optw2, 64);
      select(ipv4_proto[0:7]) {
        0x06 => tcp
        0x11 => udp
        0x01 => icmp
        0x2f => gre
      }
    }
    state ipv6 {
      extract(ipv6_hdr, 320);
      select(ipv6_hdr[48:55]) {
        0x06 => tcp
        0x11 => udp
        0x3a => icmp
        0x2f => gre
      }
    }
    state gre {
      extract(gre_flags, 16);
      extract(gre_proto, 16);
      select(gre_proto[0:15]) {
        0x0800 => inner_ipv4
      }
    }
    state inner_ipv4 {
      extract(in_ipv4, 160);
      select(in_ipv4[72:79]) {
        0x06 => tcp
        0x11 => udp
        0x01 => icmp
      }
    }
    state tcp {
      extract(tcp_hdr, 160);
      goto accept
    }
    state udp {
      extract(udp_hdr, 64);
      goto accept
    }
    state icmp {
      extract(icmp_hdr, 64);
      goto accept
    }
  )");
}

p4a::Automaton parsers::gibbServiceProvider() {
  // Core router: deep MPLS label stacks in front of IP; no VLANs.
  return p4a::parseAutomatonOrDie(R"(
    state eth {
      extract(eth_addrs, 96);
      extract(eth_type, 16);
      select(eth_type[0:15]) {
        0x8847 => mpls0
        0x0800 => ipv4
        0x86dd => ipv6
      }
    }
    state mpls0 {
      extract(mpls0_lbl, 32);
      select(mpls0_lbl[23:23]) {
        0 => mpls1
        1 => mpls_ip
      }
    }
    state mpls1 {
      extract(mpls1_lbl, 32);
      select(mpls1_lbl[23:23]) {
        0 => mpls2
        1 => mpls_ip
      }
    }
    state mpls2 {
      extract(mpls2_lbl, 32);
      select(mpls2_lbl[23:23]) {
        1 => mpls_ip
      }
    }
    state mpls_ip {
      extract(ip_ver, 4);
      extract(ip_pad, 4);
      select(ip_ver[0:3]) {
        0100 => ipv4_rest
        0110 => ipv6_rest
      }
    }
    state ipv4_rest {
      extract(ipv4_rem, 152);
      select(ipv4_rem[64:71]) {
        0x06 => tcp
        0x11 => udp
      }
    }
    state ipv6_rest {
      extract(ipv6_rem, 312);
      select(ipv6_rem[40:47]) {
        0x06 => tcp
        0x11 => udp
      }
    }
    state ipv4 {
      extract(ipv4_hdr, 160);
      select(ipv4_hdr[72:79]) {
        0x06 => tcp
        0x11 => udp
      }
    }
    state ipv6 {
      extract(ipv6_hdr, 320);
      select(ipv6_hdr[48:55]) {
        0x06 => tcp
        0x11 => udp
      }
    }
    state tcp {
      extract(tcp_hdr, 160);
      goto accept
    }
    state udp {
      extract(udp_hdr, 64);
      goto accept
    }
  )");
}

p4a::Automaton parsers::gibbDatacenter() {
  // Top-of-rack switch: VXLAN and NVGRE tunnels with a full inner
  // Ethernet/IP/transport stack.
  return p4a::parseAutomatonOrDie(R"(
    state eth {
      extract(eth_addrs, 96);
      extract(eth_type, 16);
      select(eth_type[0:15]) {
        0x8100 => vlan
        0x0800 => ipv4
        0x86dd => ipv6
      }
    }
    state vlan {
      extract(vlan_tci, 16);
      extract(vlan_type, 16);
      select(vlan_type[0:15]) {
        0x0800 => ipv4
        0x86dd => ipv6
      }
    }
    state ipv4 {
      extract(ipv4_hdr, 160);
      select(ipv4_hdr[72:79]) {
        0x06 => tcp
        0x11 => udp
        0x2f => nvgre
        0x01 => icmp
      }
    }
    state ipv6 {
      extract(ipv6_hdr, 320);
      select(ipv6_hdr[48:55]) {
        0x06 => tcp
        0x11 => udp
        0x2f => nvgre
        0x3a => icmp
      }
    }
    state udp {
      extract(udp_ports, 32);
      extract(udp_rest, 32);
      select(udp_ports[16:31]) {
        0x12b5 => vxlan
        _      => accept
      }
    }
    state vxlan {
      extract(vxlan_hdr, 64);
      goto inner_eth
    }
    state nvgre {
      extract(nvgre_hdr, 64);
      goto inner_eth
    }
    state inner_eth {
      extract(in_eth_addrs, 96);
      extract(in_eth_type, 16);
      select(in_eth_type[0:15]) {
        0x0800 => inner_ipv4
        0x86dd => inner_ipv6
      }
    }
    state inner_ipv4 {
      extract(in_ipv4_hdr, 160);
      select(in_ipv4_hdr[72:79]) {
        0x06 => inner_tcp
        0x11 => inner_udp
        0x01 => inner_icmp
      }
    }
    state inner_ipv6 {
      extract(in_ipv6_hdr, 320);
      select(in_ipv6_hdr[48:55]) {
        0x06 => inner_tcp
        0x11 => inner_udp
        0x3a => inner_icmp
      }
    }
    state inner_tcp {
      extract(in_tcp_hdr, 160);
      goto accept
    }
    state inner_udp {
      extract(in_udp_hdr, 64);
      goto accept
    }
    state inner_icmp {
      extract(in_icmp_hdr, 64);
      goto accept
    }
    state tcp {
      extract(tcp_hdr, 160);
      goto accept
    }
    state icmp {
      extract(icmp_hdr, 64);
      goto accept
    }
  )");
}

p4a::Automaton parsers::gibbEnterprise() {
  // Campus router: VLANs, ARP, RCP (rate control) alongside the usual
  // IPv4(+options)/IPv6/TCP/UDP/ICMP stack.
  return p4a::parseAutomatonOrDie(R"(
    state eth {
      extract(eth_addrs, 96);
      extract(eth_type, 16);
      select(eth_type[0:15]) {
        0x8100 => vlan0
        0x0806 => arp
        0x0800 => ipv4
        0x86dd => ipv6
      }
    }
    state vlan0 {
      extract(vlan0_tci, 16);
      extract(vlan0_type, 16);
      select(vlan0_type[0:15]) {
        0x8100 => vlan1
        0x0806 => arp
        0x0800 => ipv4
        0x86dd => ipv6
      }
    }
    state vlan1 {
      extract(vlan1_tci, 16);
      extract(vlan1_type, 16);
      select(vlan1_type[0:15]) {
        0x0806 => arp
        0x0800 => ipv4
        0x86dd => ipv6
      }
    }
    state arp {
      extract(arp_hdr, 224);
      goto accept
    }
    state ipv4 {
      extract(ipv4_ver, 4);
      extract(ipv4_ihl, 4);
      extract(ipv4_mid, 64);
      extract(ipv4_proto, 8);
      extract(ipv4_tail, 80);
      select(ipv4_ihl[0:3], ipv4_proto[0:7]) {
        (0110, _)    => ipv4_opt1
        (0101, 0x06) => tcp
        (0101, 0x11) => udp
        (0101, 0x01) => icmp
        (0101, 0xfe) => rcp
      }
    }
    state ipv4_opt1 {
      extract(ipv4_optw, 32);
      select(ipv4_proto[0:7]) {
        0x06 => tcp
        0x11 => udp
        0x01 => icmp
        0xfe => rcp
      }
    }
    state ipv6 {
      extract(ipv6_hdr, 320);
      select(ipv6_hdr[48:55]) {
        0x06 => tcp
        0x11 => udp
        0x3a => icmp
        0xfe => rcp
      }
    }
    state rcp {
      extract(rcp_hdr, 96);
      goto accept
    }
    state tcp {
      extract(tcp_hdr, 160);
      goto accept
    }
    state udp {
      extract(udp_hdr, 64);
      goto accept
    }
    state icmp {
      extract(icmp_hdr, 64);
      goto accept
    }
  )");
}
