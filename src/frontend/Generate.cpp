//===- Generate.cpp - Random surface-parser generation --------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "frontend/Generate.h"

#include <algorithm>
#include <map>
#include <random>
#include <vector>

using namespace leapfrog;
using namespace leapfrog::frontend;

namespace {

/// Thin wrapper: every draw goes through one engine so a seed fixes the
/// whole program.
struct Rng {
  explicit Rng(uint64_t Seed) : Engine(Seed ^ 0x9e3779b97f4a7c15ull) {}

  size_t below(size_t N) {
    return N == 0 ? 0 : std::uniform_int_distribution<size_t>(0, N - 1)(
                            Engine);
  }
  bool chance(unsigned Num, unsigned Den) { return below(Den) < Num; }

  Bitvector bits(size_t Width) {
    Bitvector BV(Width);
    for (size_t I = 0; I < Width; ++I)
      BV.setBit(I, chance(1, 2));
    return BV;
  }

  std::mt19937_64 Engine;
};

/// The generator's fixed shape vocabulary. Small widths keep every
/// generated pair decidable in milliseconds, so the harness can afford
/// jobs × backend sweeps per seed.
constexpr size_t HeaderWidths[] = {2, 4, 8};
constexpr size_t StackSlots = 2;
constexpr size_t StackBits = 4;

class Generator {
public:
  explicit Generator(uint64_t Seed) : R(Seed) {}

  SurfaceProgram run() {
    SurfaceProgram P;

    size_t NumHeaders = 1 + R.below(3);
    for (size_t I = 0; I < NumHeaders; ++I) {
      std::string Name = "h" + std::to_string(I);
      size_t Bits = HeaderWidths[R.below(3)];
      Headers.emplace_back(Name, Bits);
      P.addHeader(Name, Bits);
    }
    UseStack = R.chance(1, 3);
    if (UseStack)
      P.addStack("stk", StackSlots, StackBits);
    UseSub = R.chance(1, 3);

    size_t NumStates = 2 + R.below(3);
    for (size_t I = 0; I < NumStates; ++I)
      StateNames.push_back("q" + std::to_string(I));

    for (size_t I = 0; I < NumStates; ++I)
      P.addState(makeState(StateNames[I]));
    P.setEntry(StateNames[0]);

    if (UseSub) {
      SubParser Sub;
      Sub.Name = "sub";
      Sub.Entry = "s0";
      SurfaceState S;
      S.Name = "s0";
      const auto &[HName, HBits] = Headers[R.below(Headers.size())];
      S.Ops.push_back(SurfaceOp::extract(HName));
      if (R.chance(1, 2)) {
        // Terminal select inside the subparser; its accept is rewired to
        // the caller's continuation at inlining time.
        std::vector<SExprRef> Ds{SExpr::mkHeader(HName)};
        std::vector<SurfaceCase> Cases;
        Cases.push_back(SurfaceCase{{p4a::Pattern::exact(R.bits(HBits))},
                                    SurfaceTarget::reject()});
        Cases.push_back(SurfaceCase{{p4a::Pattern::wildcard()},
                                    SurfaceTarget::accept()});
        S.Tz = SurfaceTransition::mkSelect(std::move(Ds), std::move(Cases));
      } else {
        S.Tz = SurfaceTransition::mkGoto(SurfaceTarget::accept());
      }
      Sub.States.push_back(std::move(S));
      P.addSubParser(std::move(Sub));
    }
    return P;
  }

private:
  /// A random expression of exactly \p Width bits built from literals,
  /// slices, concats, and *initialized* operands only — headers the
  /// current state has already extracted, looked ahead into, or
  /// assigned (the Avail set), and `stk.last` right after an
  /// `extract(stk.next)`. The width discipline keeps assignments and
  /// discriminants well-typed; the initialization discipline keeps the
  /// renamed-twin positive control sound — language equivalence
  /// quantifies the two initial stores independently, so a program
  /// whose behavior depends on an unextracted header is not even
  /// equivalent to its own renaming.
  SExprRef expr(size_t Width, size_t Depth = 0) {
    if (StackLastOk && Width == StackBits && R.chance(1, 4))
      return SExpr::mkStackLast("stk");
    if (Depth < 2 && Width >= 2 && R.chance(1, 4)) {
      size_t LeftWidth = 1 + R.below(Width - 1);
      return SExpr::mkConcat(expr(LeftWidth, Depth + 1),
                             expr(Width - LeftWidth, Depth + 1));
    }
    // An initialized header of the right width, or a slice window into a
    // wider one.
    std::vector<size_t> Fits, Wider;
    for (size_t I : Avail) {
      if (Headers[I].second == Width)
        Fits.push_back(I);
      if (Headers[I].second > Width)
        Wider.push_back(I);
    }
    if (!Fits.empty() && R.chance(2, 3))
      return SExpr::mkHeader(Headers[Fits[R.below(Fits.size())]].first);
    if (!Wider.empty() && R.chance(2, 3)) {
      const auto &[Name, Bits] = Headers[Wider[R.below(Wider.size())]];
      size_t Lo = R.below(Bits - Width + 1);
      return SExpr::mkSlice(SExpr::mkHeader(Name), Lo, Lo + Width - 1);
    }
    return SExpr::mkLiteral(R.bits(Width));
  }

  SurfaceTarget target(bool AllowCall) {
    switch (R.below(AllowCall && UseSub ? 5 : 4)) {
    case 0:
      return SurfaceTarget::accept();
    case 1:
      return SurfaceTarget::reject();
    case 4: {
      // Calls carry an inherited or an explicit continuation; explicit
      // continuations resolve in the caller's (main) scope. The callee
      // never calls anything, so no cycle can form.
      if (R.chance(1, 2))
        return SurfaceTarget::call("sub");
      return SurfaceTarget::call("sub",
                                 StateNames[R.below(StateNames.size())]);
    }
    default:
      return SurfaceTarget::state(StateNames[R.below(StateNames.size())]);
    }
  }

  SurfaceState makeState(const std::string &Name) {
    SurfaceState S;
    S.Name = Name;
    Avail.clear();

    // Extracts first. Lookahead (when drawn) goes in front and must fit
    // inside the state's plain-header extraction, per the lowering rule.
    std::vector<size_t> ExtractIdx;
    ExtractIdx.push_back(R.below(Headers.size()));
    if (R.chance(1, 3)) {
      size_t Second = R.below(Headers.size());
      if (Second != ExtractIdx[0])
        ExtractIdx.push_back(Second);
    }
    bool StackExtract = UseStack && R.chance(1, 2);
    StackLastOk = StackExtract;

    size_t PlainBits = 0;
    for (size_t I : ExtractIdx)
      PlainBits += Headers[I].second;

    if (!StackExtract && R.chance(1, 4)) {
      // Any header no wider than the extraction — including one of the
      // extract targets — is a valid lookahead target.
      std::vector<size_t> Candidates;
      for (size_t I = 0; I < Headers.size(); ++I)
        if (Headers[I].second <= PlainBits)
          Candidates.push_back(I);
      if (!Candidates.empty()) {
        size_t La = Candidates[R.below(Candidates.size())];
        S.Ops.push_back(SurfaceOp::lookahead(Headers[La].first));
        Avail.push_back(La);
      }
    }
    for (size_t I : ExtractIdx) {
      S.Ops.push_back(SurfaceOp::extract(Headers[I].first));
      if (std::find(Avail.begin(), Avail.end(), I) == Avail.end())
        Avail.push_back(I);
    }
    if (StackExtract)
      S.Ops.push_back(SurfaceOp::extractNext("stk"));

    // Optional assignment; lookahead states demand extracts-then-assigns
    // order, which this layout already satisfies. The target becomes
    // initialized for the discriminants below.
    if (R.chance(1, 3)) {
      size_t HI = R.below(Headers.size());
      S.Ops.push_back(
          SurfaceOp::assign(Headers[HI].first, expr(Headers[HI].second)));
      if (std::find(Avail.begin(), Avail.end(), HI) == Avail.end())
        Avail.push_back(HI);
    }

    if (R.chance(1, 3)) {
      S.Tz = SurfaceTransition::mkGoto(target(/*AllowCall=*/true));
      return S;
    }

    // Select over one or two discriminants.
    std::vector<SExprRef> Ds;
    std::vector<size_t> Widths;
    size_t Arity = 1 + R.below(2);
    for (size_t I = 0; I < Arity; ++I) {
      size_t W = HeaderWidths[R.below(2)]; // 2 or 4 bits of branching.
      Widths.push_back(W);
      Ds.push_back(expr(W));
    }
    std::vector<SurfaceCase> Cases;
    size_t NumCases = 1 + R.below(3);
    for (size_t C = 0; C < NumCases; ++C) {
      std::vector<p4a::Pattern> Pats;
      for (size_t I = 0; I < Arity; ++I)
        Pats.push_back(R.chance(1, 6)
                           ? p4a::Pattern::wildcard()
                           : p4a::Pattern::exact(R.bits(Widths[I])));
      Cases.push_back(SurfaceCase{std::move(Pats), target(true)});
    }
    if (R.chance(3, 4)) {
      std::vector<p4a::Pattern> Pats(Arity, p4a::Pattern::wildcard());
      Cases.push_back(SurfaceCase{std::move(Pats), target(true)});
    }
    S.Tz = SurfaceTransition::mkSelect(std::move(Ds), std::move(Cases));
    return S;
  }

  Rng R;
  std::vector<std::pair<std::string, size_t>> Headers;
  std::vector<std::string> StateNames;
  bool UseStack = false;
  bool UseSub = false;
  /// Header indices the state under construction has initialized so far
  /// (lookahead, extract, assign) — the only legal read operands.
  std::vector<size_t> Avail;
  /// Whether `stk.last` is initialized in the state under construction.
  bool StackLastOk = false;
};

} // namespace

SurfaceProgram frontend::generateProgram(uint64_t Seed) {
  return Generator(Seed).run();
}

//===----------------------------------------------------------------------===//
// Twins
//===----------------------------------------------------------------------===//

namespace {

SurfaceTarget renameTarget(const SurfaceTarget &T,
                           const std::string &Suffix) {
  switch (T.K) {
  case SurfaceTarget::Kind::Accept:
  case SurfaceTarget::Kind::Reject:
    return T;
  case SurfaceTarget::Kind::State:
    return SurfaceTarget::state(T.StateName + Suffix);
  case SurfaceTarget::Kind::Call:
    // The continuation lives in the caller's (renamed) scope; the callee
    // name is a subparser, which keeps its name.
    return SurfaceTarget::call(T.Callee, T.ContinueAt.empty()
                                             ? ""
                                             : T.ContinueAt + Suffix);
  }
  return T;
}

/// Rebuilds \p Program with \p Mutate applied to a copy of its main
/// states (SurfaceProgram is append-only, so edits go through a copy).
template <typename Fn>
SurfaceProgram rebuildWith(const SurfaceProgram &Program, Fn &&Mutate) {
  std::vector<SurfaceState> Main = Program.mainStates();
  Mutate(Main);
  SurfaceProgram Out;
  for (const auto &[Name, Bits] : Program.headers())
    Out.addHeader(Name, Bits);
  for (const auto &[Name, Decl] : Program.stacks())
    Out.addStack(Name, Decl.Slots, Decl.Bits);
  for (SurfaceState &S : Main)
    Out.addState(std::move(S));
  for (const SubParser &Sub : Program.subParsers())
    Out.addSubParser(Sub);
  Out.setEntry(Program.entry());
  return Out;
}

} // namespace

SurfaceProgram frontend::renameStates(const SurfaceProgram &Program,
                                      const std::string &Suffix) {
  SurfaceProgram Out = rebuildWith(Program, [&](auto &Main) {
    for (SurfaceState &S : Main) {
      S.Name += Suffix;
      if (S.Tz.IsGoto)
        S.Tz.GotoTarget = renameTarget(S.Tz.GotoTarget, Suffix);
      else
        for (SurfaceCase &C : S.Tz.Cases)
          C.Target = renameTarget(C.Target, Suffix);
    }
  });
  Out.setEntry(Program.entry() + Suffix);
  return Out;
}

SurfaceProgram frontend::mutateProgram(const SurfaceProgram &Program,
                                       uint64_t Seed) {
  Rng R(Seed * 0x2545f4914f6cdd1dull + 1);

  // Enumerate the applicable mutation sites, then draw one. Every
  // mutation preserves well-typedness: pattern widths, assignment
  // widths, and slice windows never change shape, only content.
  struct Site {
    enum class Kind {
      FlipPatternBit,
      SwapCases,
      DropCase,
      RetargetCase,
      RetargetGoto,
      ShiftSlice,
    } K;
    size_t State = 0, Case = 0, Pat = 0;
  };
  std::vector<Site> Sites;
  const std::vector<SurfaceState> &Main = Program.mainStates();
  std::map<std::string, size_t> HeaderBits(Program.headers().begin(),
                                           Program.headers().end());
  for (size_t SI = 0; SI < Main.size(); ++SI) {
    const SurfaceState &S = Main[SI];
    if (S.Tz.IsGoto) {
      Sites.push_back({Site::Kind::RetargetGoto, SI, 0, 0});
      continue;
    }
    for (size_t CI = 0; CI < S.Tz.Cases.size(); ++CI) {
      Sites.push_back({Site::Kind::RetargetCase, SI, CI, 0});
      for (size_t PI = 0; PI < S.Tz.Cases[CI].Pats.size(); ++PI)
        if (!S.Tz.Cases[CI].Pats[PI].isWildcard() &&
            S.Tz.Cases[CI].Pats[PI].Exact->size() > 0)
          Sites.push_back({Site::Kind::FlipPatternBit, SI, CI, PI});
    }
    if (S.Tz.Cases.size() >= 2) {
      Sites.push_back({Site::Kind::SwapCases, SI, 0, 0});
      Sites.push_back({Site::Kind::DropCase, SI, 0, 0});
    }
    for (size_t OI = 0; OI < S.Ops.size(); ++OI) {
      const SurfaceOp &O = S.Ops[OI];
      if (O.K == SurfaceOp::Kind::Assign && O.Value &&
          O.Value->kind() == SExpr::Kind::Slice &&
          O.Value->sliceOperand()->kind() == SExpr::Kind::Header) {
        auto It = HeaderBits.find(O.Value->sliceOperand()->name());
        if (It != HeaderBits.end() && O.Value->sliceHi() + 1 < It->second)
          Sites.push_back({Site::Kind::ShiftSlice, SI, OI, 0});
      }
    }
  }
  if (Sites.empty())
    return Program; // Degenerate program; the harness skips no-op twins.

  Site Chosen = Sites[R.below(Sites.size())];
  std::vector<std::string> StateNames;
  for (const SurfaceState &S : Main)
    StateNames.push_back(S.Name);

  // Draw a replacement target that differs from \p Old, so a retarget
  // mutation is never a textual no-op.
  auto freshTarget = [&](const SurfaceTarget &Old) {
    for (int Try = 0; Try < 16; ++Try) {
      SurfaceTarget T =
          R.chance(1, 3)
              ? (R.chance(1, 2) ? SurfaceTarget::accept()
                                : SurfaceTarget::reject())
              : SurfaceTarget::state(StateNames[R.below(StateNames.size())]);
      if (T.K != Old.K || T.StateName != Old.StateName)
        return T;
    }
    return Old.K == SurfaceTarget::Kind::Accept ? SurfaceTarget::reject()
                                                : SurfaceTarget::accept();
  };

  return rebuildWith(Program, [&](std::vector<SurfaceState> &States) {
    SurfaceState &S = States[Chosen.State];
    switch (Chosen.K) {
    case Site::Kind::FlipPatternBit: {
      p4a::Pattern &P = S.Tz.Cases[Chosen.Case].Pats[Chosen.Pat];
      Bitvector BV = *P.Exact;
      size_t Bit = R.below(BV.size());
      BV.setBit(Bit, !BV.bit(Bit));
      P = p4a::Pattern::exact(std::move(BV));
      break;
    }
    case Site::Kind::SwapCases: {
      size_t N = S.Tz.Cases.size();
      size_t A = R.below(N);
      size_t B = (A + 1 + R.below(N - 1)) % N; // Always a distinct case.
      std::swap(S.Tz.Cases[A], S.Tz.Cases[B]);
      break;
    }
    case Site::Kind::DropCase:
      S.Tz.Cases.erase(S.Tz.Cases.begin() +
                       long(R.below(S.Tz.Cases.size())));
      break;
    case Site::Kind::RetargetCase:
      S.Tz.Cases[Chosen.Case].Target =
          freshTarget(S.Tz.Cases[Chosen.Case].Target);
      break;
    case Site::Kind::RetargetGoto:
      S.Tz.GotoTarget = freshTarget(S.Tz.GotoTarget);
      break;
    case Site::Kind::ShiftSlice: {
      SurfaceOp &O = S.Ops[Chosen.Case];
      O.Value = SExpr::mkSlice(O.Value->sliceOperand(),
                               O.Value->sliceLo() + 1,
                               O.Value->sliceHi() + 1);
      break;
    }
    }
  });
}
