//===- Text.cpp - Textual front-end for surface parsers -------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "frontend/Text.h"

#include <cassert>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

using namespace leapfrog;
using namespace leapfrog::frontend;

namespace {

struct Token {
  enum class Kind {
    Ident,   // state names, header names, keywords
    Number,  // decimal number
    Binary,  // bare or 0b binary literal
    Hex,     // 0x literal
    Punct,   // single punctuation or multi-char operator
    End,
  };

  Kind K = Kind::End;
  std::string Text;
  int Line = 0;
  int Col = 0;
};

/// The p4a lexer (p4a/Parser.cpp) with column tracking added: the
/// diagnostics battery pins exact line:col positions, so every token
/// remembers where it starts.
class Lexer {
public:
  explicit Lexer(const std::string &Source) : Src(Source) { advance(); }

  const Token &peek() const { return Current; }

  Token take() {
    Token T = Current;
    advance();
    return T;
  }

private:
  void advance() {
    skipTrivia();
    Current.Line = Line;
    Current.Col = int(Pos - LineStart) + 1;
    if (Pos >= Src.size()) {
      Current.K = Token::Kind::End;
      Current.Text.clear();
      return;
    }
    char C = Src[Pos];
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Begin = Pos;
      while (Pos < Src.size() &&
             (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '_'))
        ++Pos;
      Current.K = Token::Kind::Ident;
      Current.Text = Src.substr(Begin, Pos - Begin);
      // A bare `_` is punctuation (the wildcard pattern).
      if (Current.Text == "_")
        Current.K = Token::Kind::Punct;
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      lexNumber();
      return;
    }
    for (const char *Op : {"++", ":=", "=>", "->"}) {
      if (Src.compare(Pos, 2, Op) == 0) {
        Current.K = Token::Kind::Punct;
        Current.Text = Op;
        Pos += 2;
        return;
      }
    }
    Current.K = Token::Kind::Punct;
    Current.Text = std::string(1, C);
    ++Pos;
  }

  void lexNumber() {
    size_t Begin = Pos;
    if (Src.compare(Pos, 2, "0b") == 0 || Src.compare(Pos, 2, "0B") == 0) {
      Pos += 2;
      while (Pos < Src.size() && (Src[Pos] == '0' || Src[Pos] == '1' ||
                                  Src[Pos] == '_'))
        ++Pos;
      Current.K = Token::Kind::Binary;
      Current.Text = Src.substr(Begin + 2, Pos - Begin - 2);
      return;
    }
    if (Src.compare(Pos, 2, "0x") == 0 || Src.compare(Pos, 2, "0X") == 0) {
      Pos += 2;
      while (Pos < Src.size() &&
             (std::isxdigit(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '_'))
        ++Pos;
      Current.K = Token::Kind::Hex;
      Current.Text = Src.substr(Begin + 2, Pos - Begin - 2);
      return;
    }
    while (Pos < Src.size() &&
           std::isdigit(static_cast<unsigned char>(Src[Pos])))
      ++Pos;
    // Bare digit runs are binary literals in pattern/expression positions
    // but decimal in width positions; the parser decides from context.
    Current.K = Token::Kind::Number;
    Current.Text = Src.substr(Begin, Pos - Begin);
  }

  void skipTrivia() {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (std::isspace(static_cast<unsigned char>(C))) {
        if (C == '\n') {
          ++Line;
          LineStart = Pos + 1;
        }
        ++Pos;
        continue;
      }
      if (C == '#' || (C == '/' && Pos + 1 < Src.size() &&
                       Src[Pos + 1] == '/')) {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
        continue;
      }
      break;
    }
  }

  const std::string &Src;
  size_t Pos = 0;
  size_t LineStart = 0;
  int Line = 1;
  Token Current;
};

/// Recursive-descent parser for the `.lfp` grammar. Collects errors
/// (capped at 20) instead of throwing; on a malformed statement it skips
/// to the next ';' or '}' and continues.
class Parser {
public:
  explicit Parser(const std::string &Source)
      : Source(Source), Lex(Source) {}

  TextParseResult run() {
    // Declarations may appear anywhere, but bodies need the header/stack
    // tables to disambiguate `s[0]` (stack element) from `h[0:3]` (slice)
    // and to bounds-check at parse time — so pre-scan all declarations.
    prescan();
    bool SawEntry = false;
    while (!atEnd() && Result.Errors.size() < 20) {
      if (peekIdent("header")) {
        parseHeaderDecl();
        continue;
      }
      if (peekIdent("stack")) {
        parseStackDecl();
        continue;
      }
      if (peekIdent("entry")) {
        Token T = Lex.take();
        std::string Name = expectIdent();
        expectPunct(";");
        if (SawEntry)
          error(T, "duplicate entry declaration");
        else if (!Name.empty())
          Result.Program.setEntry(Name);
        SawEntry = true;
        continue;
      }
      if (peekIdent("state")) {
        Result.Program.addState(parseState(/*Scope=*/""));
        continue;
      }
      if (peekIdent("subparser")) {
        parseSubParser();
        continue;
      }
      error("expected 'header', 'stack', 'entry', 'state', or "
            "'subparser'");
      Lex.take();
    }
    if (!SawEntry && Result.Errors.size() < 20)
      error("missing entry declaration ('entry <state>;')");
    checkCallCycles();
    return std::move(Result);
  }

private:
  struct CallEdge {
    std::string From;   ///< Enclosing subparser; "" = main parser.
    std::string Callee;
    bool ExplicitCont;
    int Line, Col;
  };

  //===--- token plumbing -------------------------------------------------===//

  bool atEnd() const { return Lex.peek().K == Token::Kind::End; }

  bool peekIdent(const std::string &S) const {
    return Lex.peek().K == Token::Kind::Ident && Lex.peek().Text == S;
  }

  bool peekPunct(const std::string &S) const {
    return Lex.peek().K == Token::Kind::Punct && Lex.peek().Text == S;
  }

  void error(const Token &At, const std::string &Msg) {
    // Hard cap: the statement loops stop asking for new constructs at 20
    // diagnostics, but one malformed statement can emit a few follow-ons
    // while unwinding; keep the flood bounded either way.
    if (Result.Errors.size() >= 24)
      return;
    Result.Errors.push_back(std::to_string(At.Line) + ":" +
                            std::to_string(At.Col) + ": " + Msg);
  }

  void error(const std::string &Msg) {
    const Token &T = Lex.peek();
    error(T, Msg + (T.Text.empty() ? "" : " (at '" + T.Text + "')"));
  }

  bool expectPunct(const std::string &S) {
    if (peekPunct(S)) {
      Lex.take();
      return true;
    }
    error("expected '" + S + "'");
    return false;
  }

  std::string expectIdent() {
    if (Lex.peek().K == Token::Kind::Ident)
      return Lex.take().Text;
    error("expected identifier");
    return "";
  }

  size_t expectNumber() {
    if (Lex.peek().K == Token::Kind::Number) {
      Token T = Lex.take();
      char *End = nullptr;
      unsigned long long V = std::strtoull(T.Text.c_str(), &End, 10);
      if (V > 1000000000ull) {
        error(T, "number '" + T.Text + "' is out of range");
        return 0;
      }
      return size_t(V);
    }
    error("expected number");
    return 0;
  }

  /// Skips to just past the next ';' (or to a '}' / end), resynchronizing
  /// after a malformed statement.
  void syncStatement() {
    while (!atEnd() && !peekPunct(";") && !peekPunct("}"))
      Lex.take();
    if (peekPunct(";"))
      Lex.take();
  }

  //===--- declaration prescan --------------------------------------------===//

  void prescan() {
    Lexer Scan(Src());
    // A sliding 7-token window over the raw stream, wide enough for
    // `stack IDENT [ NUM ] : NUM`.
    Token W[7];
    for (Token &T : W)
      T = Scan.take();
    auto Shift = [&]() {
      for (int I = 0; I < 6; ++I)
        W[I] = W[I + 1];
      W[6] = Scan.take();
    };
    auto Num = [](const Token &T) { return T.K == Token::Kind::Number; };
    auto Id = [](const Token &T) { return T.K == Token::Kind::Ident; };
    while (W[0].K != Token::Kind::End) {
      if (Id(W[0]) && W[0].Text == "header" && Id(W[1]) &&
          W[2].Text == ":" && Num(W[3]) && !HeaderW.count(W[1].Text))
        HeaderW[W[1].Text] = size_t(std::strtoull(W[3].Text.c_str(),
                                                  nullptr, 10));
      if (Id(W[0]) && W[0].Text == "stack" && Id(W[1]) &&
          W[2].Text == "[" && Num(W[3]) && W[4].Text == "]" &&
          W[5].Text == ":" && Num(W[6]) && !StackD.count(W[1].Text))
        StackD[W[1].Text] = SurfaceProgram::StackDecl{
            size_t(std::strtoull(W[3].Text.c_str(), nullptr, 10)),
            size_t(std::strtoull(W[6].Text.c_str(), nullptr, 10))};
      if (Id(W[0]) && W[0].Text == "subparser" && Id(W[1]))
        SubNames.insert(W[1].Text);
      Shift();
    }
  }

  // Lexer keeps a reference to the source; expose it for the prescan's
  // second lexer.
  const std::string &Src() const { return Source; }

  //===--- declarations ---------------------------------------------------===//

  void parseHeaderDecl() {
    Lex.take(); // 'header'
    Token NameTok = Lex.peek();
    std::string Name = expectIdent();
    expectPunct(":");
    size_t Bits = expectNumber();
    expectPunct(";");
    if (Name.empty())
      return;
    if (StackD.count(Name)) {
      error(NameTok, "'" + Name + "' is declared both as header and stack");
      return;
    }
    if (Bits == 0) {
      error(NameTok, "header '" + Name + "' must be at least one bit wide");
      return;
    }
    auto It = HeaderW.find(Name);
    if (It != HeaderW.end() && It->second != Bits) {
      error(NameTok, "header '" + Name + "' redeclared with width " +
                         std::to_string(Bits) + " (previously " +
                         std::to_string(It->second) + ")");
      return;
    }
    HeaderW[Name] = Bits;
    Result.Program.addHeader(Name, Bits);
  }

  void parseStackDecl() {
    Lex.take(); // 'stack'
    Token NameTok = Lex.peek();
    std::string Name = expectIdent();
    expectPunct("[");
    size_t Slots = expectNumber();
    expectPunct("]");
    expectPunct(":");
    size_t Bits = expectNumber();
    expectPunct(";");
    if (Name.empty())
      return;
    if (HeaderW.count(Name)) {
      error(NameTok, "'" + Name + "' is declared both as header and stack");
      return;
    }
    if (Slots == 0 || Bits == 0) {
      error(NameTok, "stack '" + Name +
                         "' needs at least one slot and one bit");
      return;
    }
    auto It = StackD.find(Name);
    if (It != StackD.end() &&
        (It->second.Slots != Slots || It->second.Bits != Bits)) {
      error(NameTok, "stack '" + Name + "' redeclared with a different "
                     "shape");
      return;
    }
    StackD[Name] = SurfaceProgram::StackDecl{Slots, Bits};
    Result.Program.addStack(Name, Slots, Bits);
  }

  //===--- expressions ----------------------------------------------------===//

  /// Parses a literal token into a bitvector; bare digit runs are binary.
  std::optional<Bitvector> parseLiteralToken() {
    const Token &T = Lex.peek();
    if (T.K == Token::Kind::Binary)
      return Bitvector::fromString(Lex.take().Text);
    if (T.K == Token::Kind::Hex) {
      std::string Hex = Lex.take().Text;
      Bitvector BV;
      for (char C : Hex) {
        if (C == '_')
          continue;
        int V = std::isdigit(static_cast<unsigned char>(C))
                    ? C - '0'
                    : std::tolower(static_cast<unsigned char>(C)) - 'a' + 10;
        BV = BV.concat(Bitvector::fromUint(uint64_t(V), 4));
      }
      return BV;
    }
    if (T.K == Token::Kind::Number) {
      Token Tok = Lex.take();
      for (char C : Tok.Text)
        if (C != '0' && C != '1') {
          error(Tok, "bare numeric literal '" + Tok.Text +
                         "' contains non-binary digits; use 0b or 0x");
          return std::nullopt;
        }
      return Bitvector::fromString(Tok.Text);
    }
    return std::nullopt;
  }

  /// Static width of \p E from the declaration tables; nullopt only when
  /// a sub-expression already failed to parse.
  std::optional<size_t> widthOf(const SExprRef &E) {
    if (!E)
      return std::nullopt;
    switch (E->kind()) {
    case SExpr::Kind::Header: {
      auto It = HeaderW.find(E->name());
      return It == HeaderW.end() ? std::nullopt
                                 : std::optional<size_t>(It->second);
    }
    case SExpr::Kind::StackLast:
    case SExpr::Kind::StackElem: {
      auto It = StackD.find(E->name());
      return It == StackD.end() ? std::nullopt
                                : std::optional<size_t>(It->second.Bits);
    }
    case SExpr::Kind::Literal:
      return E->literal().size();
    case SExpr::Kind::Slice: {
      auto W = widthOf(E->sliceOperand());
      if (!W || *W == 0)
        return W;
      size_t Lo = std::min(E->sliceLo(), *W - 1);
      size_t Hi = std::min(E->sliceHi(), *W - 1);
      return Lo > Hi ? size_t(0) : Hi - Lo + 1;
    }
    case SExpr::Kind::Concat: {
      auto L = widthOf(E->concatLhs());
      auto R = widthOf(E->concatRhs());
      return L && R ? std::optional<size_t>(*L + *R) : std::nullopt;
    }
    }
    return std::nullopt;
  }

  SExprRef parsePrimary() {
    if (peekPunct("(")) {
      Lex.take();
      SExprRef E = parseExpr();
      expectPunct(")");
      return E;
    }
    if (Lex.peek().K == Token::Kind::Ident) {
      Token NameTok = Lex.take();
      const std::string &Name = NameTok.Text;
      auto StackIt = StackD.find(Name);
      if (StackIt != StackD.end()) {
        if (peekPunct(".")) {
          Lex.take();
          Token Field = Lex.peek();
          std::string F = expectIdent();
          if (F == "last")
            return SExpr::mkStackLast(Name);
          if (F == "next")
            error(Field, "'" + Name + ".next' is only valid inside "
                         "extract()");
          else
            error(Field, "expected 'last' after '" + Name + ".'");
          return nullptr;
        }
        if (peekPunct("[")) {
          Lex.take();
          Token IdxTok = Lex.peek();
          size_t Idx = expectNumber();
          expectPunct("]");
          if (Idx >= StackIt->second.Slots) {
            error(IdxTok, "stack element " + Name + "[" +
                              std::to_string(Idx) +
                              "] is out of range (stack has " +
                              std::to_string(StackIt->second.Slots) +
                              " slots)");
            return nullptr;
          }
          return SExpr::mkStackElem(Name, Idx);
        }
        error(NameTok, "stack '" + Name + "' cannot be read whole; use '" +
                           Name + ".last' or '" + Name + "[i]'");
        return nullptr;
      }
      if (!HeaderW.count(Name)) {
        error(NameTok, "unknown header '" + Name + "'");
        return nullptr;
      }
      return SExpr::mkHeader(Name);
    }
    if (auto BV = parseLiteralToken())
      return SExpr::mkLiteral(std::move(*BV));
    error("expected expression");
    return nullptr;
  }

  SExprRef parseAtom() {
    SExprRef E = parsePrimary();
    while (E && peekPunct("[")) {
      Token Open = Lex.take();
      size_t Lo = expectNumber();
      expectPunct(":");
      size_t Hi = expectNumber();
      expectPunct("]");
      if (Lo > Hi) {
        error(Open, "slice [" + std::to_string(Lo) + ":" +
                        std::to_string(Hi) +
                        "] has its lower bound above its upper bound");
        return nullptr;
      }
      if (auto W = widthOf(E); W && Hi >= *W) {
        error(Open, "slice upper bound " + std::to_string(Hi) +
                        " is out of range (operand is " +
                        std::to_string(*W) + " bits wide)");
        return nullptr;
      }
      E = SExpr::mkSlice(E, Lo, Hi);
    }
    return E;
  }

  SExprRef parseExpr() {
    SExprRef E = parseAtom();
    while (E && peekPunct("++")) {
      Lex.take();
      SExprRef R = parseAtom();
      if (!R)
        return nullptr;
      E = SExpr::mkConcat(E, R);
    }
    return E;
  }

  //===--- patterns and targets -------------------------------------------===//

  p4a::Pattern parsePattern() {
    if (peekPunct("_")) {
      Lex.take();
      return p4a::Pattern::wildcard();
    }
    if (auto BV = parseLiteralToken())
      return p4a::Pattern::exact(std::move(*BV));
    error("expected pattern (literal or '_')");
    Lex.take();
    return p4a::Pattern::wildcard();
  }

  std::vector<p4a::Pattern> parsePatternTuple() {
    std::vector<p4a::Pattern> Pats;
    if (peekPunct("(")) {
      Lex.take();
      Pats.push_back(parsePattern());
      while (peekPunct(",")) {
        Lex.take();
        Pats.push_back(parsePattern());
      }
      expectPunct(")");
      return Pats;
    }
    Pats.push_back(parsePattern());
    return Pats;
  }

  SurfaceTarget parseTarget(const std::string &Scope) {
    if (peekIdent("accept")) {
      Lex.take();
      return SurfaceTarget::accept();
    }
    if (peekIdent("reject")) {
      Lex.take();
      return SurfaceTarget::reject();
    }
    if (peekIdent("call")) {
      Token CallTok = Lex.take();
      Token CalleeTok = Lex.peek();
      std::string Callee = expectIdent();
      if (!Callee.empty() && !SubNames.count(Callee))
        error(CalleeTok, "call to unknown subparser '" + Callee + "'");
      std::string Cont;
      bool Explicit = false;
      if (peekPunct("->")) {
        Lex.take();
        Cont = expectIdent();
        Explicit = true;
      }
      Calls.push_back(
          CallEdge{Scope, Callee, Explicit, CallTok.Line, CallTok.Col});
      return SurfaceTarget::call(Callee, Cont);
    }
    std::string Name = expectIdent();
    if (Name.empty())
      return SurfaceTarget::reject();
    return SurfaceTarget::state(Name);
  }

  //===--- states ---------------------------------------------------------===//

  SurfaceTransition parseTransition(const std::string &Scope) {
    if (peekIdent("goto")) {
      Lex.take();
      SurfaceTarget T = parseTarget(Scope);
      expectPunct(";");
      return SurfaceTransition::mkGoto(std::move(T));
    }
    Token SelTok = Lex.take(); // 'select'
    expectPunct("(");
    std::vector<SExprRef> Ds;
    Ds.push_back(parseExpr());
    while (peekPunct(",")) {
      Lex.take();
      Ds.push_back(parseExpr());
    }
    expectPunct(")");
    expectPunct("{");
    std::vector<SurfaceCase> Cases;
    while (!peekPunct("}")) {
      if (atEnd() || Result.Errors.size() >= 20) {
        error(SelTok, "unterminated select (missing '}')");
        return SurfaceTransition::mkSelect(std::move(Ds),
                                           std::move(Cases));
      }
      SurfaceCase C;
      C.Pats = parsePatternTuple();
      expectPunct("=>");
      C.Target = parseTarget(Scope);
      expectPunct(";");
      Cases.push_back(std::move(C));
    }
    Lex.take(); // '}'
    return SurfaceTransition::mkSelect(std::move(Ds), std::move(Cases));
  }

  SurfaceState parseState(const std::string &Scope) {
    Lex.take(); // 'state'
    SurfaceState S;
    S.Name = expectIdent();
    expectPunct("{");
    bool SawTransition = false;
    while (!peekPunct("}") && !atEnd() && Result.Errors.size() < 20) {
      if (peekIdent("extract")) {
        Lex.take();
        expectPunct("(");
        Token NameTok = Lex.peek();
        std::string Name = expectIdent();
        if (peekPunct(".")) {
          Lex.take();
          Token Field = Lex.peek();
          if (expectIdent() != "next")
            error(Field, "expected 'next' after '" + Name + ".'");
          else if (!StackD.count(Name))
            error(NameTok, "extract(" + Name + ".next): '" + Name +
                               "' is not a declared stack");
          else
            S.Ops.push_back(SurfaceOp::extractNext(Name));
        } else if (StackD.count(Name)) {
          error(NameTok, "stack '" + Name + "' must be extracted with "
                         "extract(" + Name + ".next)");
        } else if (!Name.empty() && !HeaderW.count(Name)) {
          error(NameTok, "unknown header '" + Name + "'");
        } else if (!Name.empty()) {
          S.Ops.push_back(SurfaceOp::extract(Name));
        }
        expectPunct(")");
        expectPunct(";");
        continue;
      }
      if (peekIdent("goto") || peekIdent("select")) {
        S.Tz = parseTransition(Scope);
        SawTransition = true;
        break;
      }
      if (Lex.peek().K != Token::Kind::Ident) {
        error("expected an operation ('extract', ':=') or transition "
              "('goto', 'select')");
        syncStatement();
        continue;
      }
      // Assignment: ident := lookahead ; | ident := expr ;
      Token NameTok = Lex.take();
      const std::string &H = NameTok.Text;
      bool Known = HeaderW.count(H) != 0;
      if (!Known) {
        if (StackD.count(H))
          error(NameTok, "cannot assign to stack '" + H + "'");
        else
          error(NameTok, "unknown header '" + H + "'");
      }
      if (!expectPunct(":=")) {
        syncStatement();
        continue;
      }
      if (peekIdent("lookahead")) {
        Lex.take();
        if (Known)
          S.Ops.push_back(SurfaceOp::lookahead(H));
        expectPunct(";");
        continue;
      }
      SExprRef E = parseExpr();
      expectPunct(";");
      if (Known && E)
        S.Ops.push_back(SurfaceOp::assign(H, std::move(E)));
    }
    if (!SawTransition)
      error("state '" + S.Name + "' has no goto/select transition");
    expectPunct("}");
    return S;
  }

  void parseSubParser() {
    Lex.take(); // 'subparser'
    SubParser P;
    P.Name = expectIdent();
    expectPunct("{");
    if (peekIdent("entry")) {
      Lex.take();
      P.Entry = expectIdent();
      expectPunct(";");
    } else {
      error("subparser '" + P.Name +
            "' must declare its entry first ('entry <state>;')");
    }
    while (peekIdent("state") && Result.Errors.size() < 20)
      P.States.push_back(parseState(/*Scope=*/P.Name));
    expectPunct("}");
    Result.Program.addSubParser(std::move(P));
  }

  //===--- call-cycle analysis --------------------------------------------===//

  /// A call with an explicit continuation inside a call cycle makes the
  /// continuation chain grow on every recursion level, so no finite
  /// automaton can express it. Elaboration only detects this at inlining
  /// depth 64 with no source position; catch it here, at the call site.
  void checkCallCycles() {
    std::multimap<std::string, std::string> Edges;
    for (const CallEdge &E : Calls)
      if (!E.From.empty())
        Edges.emplace(E.From, E.Callee);
    auto Reaches = [&](const std::string &From, const std::string &To) {
      std::set<std::string> Seen{From};
      std::vector<std::string> Work{From};
      while (!Work.empty()) {
        std::string Cur = Work.back();
        Work.pop_back();
        if (Cur == To)
          return true;
        auto [B, End] = Edges.equal_range(Cur);
        for (auto It = B; It != End; ++It)
          if (Seen.insert(It->second).second)
            Work.push_back(It->second);
      }
      return false;
    };
    for (const CallEdge &E : Calls) {
      if (E.From.empty() || !E.ExplicitCont)
        continue;
      if (Reaches(E.Callee, E.From))
        Result.Errors.push_back(
            std::to_string(E.Line) + ":" + std::to_string(E.Col) +
            ": recursive subparser call: '" + E.From + "' calls '" +
            E.Callee +
            "' with an explicit continuation inside a call cycle — each "
            "recursion level would need a fresh continuation, which no "
            "finite automaton can express (use a plain 'call " +
            E.Callee + "' tail call instead)");
    }
  }

  const std::string &Source;
  Lexer Lex;
  TextParseResult Result;
  std::map<std::string, size_t> HeaderW;
  std::map<std::string, SurfaceProgram::StackDecl> StackD;
  std::set<std::string> SubNames;
  std::vector<CallEdge> Calls;
};

} // namespace

TextParseResult frontend::parseSurface(const std::string &Source) {
  return Parser(Source).run();
}

SurfaceProgram frontend::parseSurfaceOrDie(const std::string &Source) {
  TextParseResult R = parseSurface(Source);
  if (!R.ok()) {
    for (const std::string &E : R.Errors)
      std::fprintf(stderr, "lfp parse error: %s\n", E.c_str());
    assert(false && "parseSurfaceOrDie failed; see stderr");
  }
  return std::move(R.Program);
}

//===----------------------------------------------------------------------===//
// Printer
//===----------------------------------------------------------------------===//

namespace {

std::string printSExpr(const SExprRef &E) {
  if (!E)
    return "<null>";
  switch (E->kind()) {
  case SExpr::Kind::Header:
    return E->name();
  case SExpr::Kind::StackLast:
    return E->name() + ".last";
  case SExpr::Kind::StackElem:
    return E->name() + "[" + std::to_string(E->stackIndex()) + "]";
  case SExpr::Kind::Literal:
    return "0b" + E->literal().str();
  case SExpr::Kind::Slice:
    return printSExpr(E->sliceOperand()) + "[" +
           std::to_string(E->sliceLo()) + ":" +
           std::to_string(E->sliceHi()) + "]";
  case SExpr::Kind::Concat:
    return "(" + printSExpr(E->concatLhs()) + " ++ " +
           printSExpr(E->concatRhs()) + ")";
  }
  return "<unknown>";
}

std::string printTarget(const SurfaceTarget &T) {
  switch (T.K) {
  case SurfaceTarget::Kind::Accept:
    return "accept";
  case SurfaceTarget::Kind::Reject:
    return "reject";
  case SurfaceTarget::Kind::State:
    return T.StateName;
  case SurfaceTarget::Kind::Call:
    return "call " + T.Callee +
           (T.ContinueAt.empty() ? "" : " -> " + T.ContinueAt);
  }
  return "reject";
}

void printState(const SurfaceState &S, const std::string &Indent,
                std::string &Out) {
  Out += "\n" + Indent + "state " + S.Name + " {\n";
  for (const SurfaceOp &O : S.Ops) {
    Out += Indent + "  ";
    switch (O.K) {
    case SurfaceOp::Kind::Extract:
      Out += "extract(" + O.Target + ");";
      break;
    case SurfaceOp::Kind::ExtractNext:
      Out += "extract(" + O.Target + ".next);";
      break;
    case SurfaceOp::Kind::Lookahead:
      Out += O.Target + " := lookahead;";
      break;
    case SurfaceOp::Kind::Assign:
      Out += O.Target + " := " + printSExpr(O.Value) + ";";
      break;
    }
    Out += "\n";
  }
  if (S.Tz.IsGoto) {
    Out += Indent + "  goto " + printTarget(S.Tz.GotoTarget) + ";\n";
  } else {
    std::vector<std::string> Ds;
    for (const SExprRef &D : S.Tz.Discriminants)
      Ds.push_back(printSExpr(D));
    Out += Indent + "  select(";
    for (size_t I = 0; I < Ds.size(); ++I)
      Out += (I ? ", " : "") + Ds[I];
    Out += ") {\n";
    for (const SurfaceCase &C : S.Tz.Cases) {
      Out += Indent + "    (";
      for (size_t I = 0; I < C.Pats.size(); ++I) {
        if (I)
          Out += ", ";
        Out += C.Pats[I].isWildcard() ? "_" : "0b" + C.Pats[I].Exact->str();
      }
      Out += ") => " + printTarget(C.Target) + ";\n";
    }
    Out += Indent + "  }\n";
  }
  Out += Indent + "}\n";
}

} // namespace

std::string frontend::printSurface(const SurfaceProgram &Program) {
  std::string Out;
  for (const auto &[Name, Bits] : Program.headers())
    Out += "header " + Name + " : " + std::to_string(Bits) + ";\n";
  for (const auto &[Name, Decl] : Program.stacks())
    Out += "stack " + Name + "[" + std::to_string(Decl.Slots) + "] : " +
           std::to_string(Decl.Bits) + ";\n";
  Out += "entry " + Program.entry() + ";\n";
  for (const SurfaceState &S : Program.mainStates())
    printState(S, "", Out);
  for (const SubParser &Sub : Program.subParsers()) {
    Out += "\nsubparser " + Sub.Name + " {\n  entry " + Sub.Entry + ";\n";
    for (const SurfaceState &S : Sub.States)
      printState(S, "  ", Out);
    Out += "}\n";
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// P4A wrapping
//===----------------------------------------------------------------------===//

namespace {

SExprRef exprFromP4a(const p4a::Automaton &Aut, const p4a::ExprRef &E) {
  switch (E->kind()) {
  case p4a::Expr::Kind::Header:
    return SExpr::mkHeader(Aut.headerName(E->header()));
  case p4a::Expr::Kind::Literal:
    return SExpr::mkLiteral(E->literal());
  case p4a::Expr::Kind::Slice:
    return SExpr::mkSlice(exprFromP4a(Aut, E->sliceOperand()),
                          E->sliceLo(), E->sliceHi());
  case p4a::Expr::Kind::Concat:
    return SExpr::mkConcat(exprFromP4a(Aut, E->concatLhs()),
                           exprFromP4a(Aut, E->concatRhs()));
  }
  return nullptr;
}

SurfaceTarget targetFromRef(const p4a::Automaton &Aut, p4a::StateRef R) {
  if (R.isAccept())
    return SurfaceTarget::accept();
  if (R.isReject())
    return SurfaceTarget::reject();
  return SurfaceTarget::state(Aut.stateName(R.Id));
}

} // namespace

SurfaceProgram frontend::surfaceFromP4a(const p4a::Automaton &Aut,
                                        const std::string &Entry) {
  SurfaceProgram P;
  for (size_t H = 0; H < Aut.numHeaders(); ++H)
    P.addHeader(Aut.headerName(p4a::HeaderId(H)),
                Aut.headerSize(p4a::HeaderId(H)));
  for (size_t I = 0; I < Aut.numStates(); ++I) {
    const p4a::State &St = Aut.state(p4a::StateId(I));
    SurfaceState S;
    S.Name = St.Name;
    for (const p4a::Op &O : St.Ops) {
      if (O.K == p4a::Op::Kind::Extract)
        S.Ops.push_back(SurfaceOp::extract(Aut.headerName(O.Target)));
      else
        S.Ops.push_back(SurfaceOp::assign(Aut.headerName(O.Target),
                                          exprFromP4a(Aut, O.Value)));
    }
    if (St.Tz.IsGoto) {
      S.Tz = SurfaceTransition::mkGoto(targetFromRef(Aut, St.Tz.GotoTarget));
    } else {
      std::vector<SExprRef> Ds;
      for (const p4a::ExprRef &D : St.Tz.Discriminants)
        Ds.push_back(exprFromP4a(Aut, D));
      std::vector<SurfaceCase> Cases;
      for (const p4a::SelectCase &C : St.Tz.Cases)
        Cases.push_back(SurfaceCase{C.Pats, targetFromRef(Aut, C.Target)});
      S.Tz = SurfaceTransition::mkSelect(std::move(Ds), std::move(Cases));
    }
    P.addState(std::move(S));
  }
  P.setEntry(Entry);
  return P;
}

