//===- Elaborate.cpp - Surface-to-P4A elaboration ---------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "frontend/Elaborate.h"

#include "p4a/Typing.h"

#include <cstdio>
#include <deque>
#include <map>
#include <set>

using namespace leapfrog;
using namespace leapfrog::frontend;

namespace {

//===----------------------------------------------------------------------===//
// Pass 1: call inlining
//===----------------------------------------------------------------------===//

/// Instantiates subparsers on demand, memoized on (callee, continuation).
/// The continuation is rendered into the memo key, so two call sites with
/// the same callee and continuation share one instance — which is what
/// turns tail-recursive subparser calls into loops.
class Inliner {
public:
  Inliner(const SurfaceProgram &Program, std::vector<std::string> &Errors)
      : Program(Program), Errors(Errors) {
    for (const SubParser &P : Program.subParsers())
      Subs[P.Name] = &P;
  }

  /// Returns the flattened state list; main states keep their names.
  std::vector<SurfaceState> run(std::string &EntryOut) {
    std::set<std::string> MainNames;
    for (const SurfaceState &S : Program.mainStates())
      MainNames.insert(S.Name);
    for (const SurfaceState &S : Program.mainStates()) {
      SurfaceState Copy = S;
      rewriteState(Copy, /*Prefix=*/"", MainNames,
                   SurfaceTarget::accept());
      Flat.push_back(std::move(Copy));
    }
    EntryOut = Program.entry();
    if (!Program.entry().empty() && !MainNames.count(Program.entry()))
      Errors.push_back("entry state '" + Program.entry() +
                       "' is not a main-parser state");
    return std::move(Flat);
  }

private:
  static constexpr size_t MaxDepth = 64;

  static std::string targetKey(const SurfaceTarget &T) {
    switch (T.K) {
    case SurfaceTarget::Kind::State:
      return "s:" + T.StateName;
    case SurfaceTarget::Kind::Accept:
      return "accept";
    case SurfaceTarget::Kind::Reject:
      return "reject";
    case SurfaceTarget::Kind::Call:
      return "call"; // Unreachable: calls are resolved before keying.
    }
    return "?";
  }

  /// Rewrites one target in the scope given by \p Prefix / \p LocalNames.
  /// \p CalleeAccept is what `accept` means in this scope (the
  /// continuation for subparser instances, plain accept for main).
  SurfaceTarget rewriteTarget(const SurfaceTarget &T,
                              const std::string &Prefix,
                              const std::set<std::string> &LocalNames,
                              const SurfaceTarget &CalleeAccept) {
    switch (T.K) {
    case SurfaceTarget::Kind::Reject:
      return T;
    case SurfaceTarget::Kind::Accept:
      return CalleeAccept;
    case SurfaceTarget::Kind::State: {
      if (!LocalNames.count(T.StateName)) {
        Errors.push_back("unknown state '" + T.StateName + "' in scope '" +
                         (Prefix.empty() ? "<main>" : Prefix) + "'");
        return SurfaceTarget::reject();
      }
      return SurfaceTarget::state(Prefix + T.StateName);
    }
    case SurfaceTarget::Kind::Call: {
      // Resolve the continuation in the *caller's* scope first.
      SurfaceTarget Cont =
          T.ContinueAt.empty()
              ? CalleeAccept
              : rewriteTarget(SurfaceTarget::state(T.ContinueAt), Prefix,
                              LocalNames, CalleeAccept);
      return instantiate(T.Callee, Cont);
    }
    }
    return SurfaceTarget::reject();
  }

  void rewriteState(SurfaceState &S, const std::string &Prefix,
                    const std::set<std::string> &LocalNames,
                    const SurfaceTarget &CalleeAccept) {
    auto Rewrite = [&](SurfaceTarget &T) {
      T = rewriteTarget(T, Prefix, LocalNames, CalleeAccept);
    };
    if (S.Tz.IsGoto)
      Rewrite(S.Tz.GotoTarget);
    else
      for (SurfaceCase &C : S.Tz.Cases)
        Rewrite(C.Target);
  }

  /// Creates (or reuses) the instance of \p Callee whose accept resumes at
  /// \p Continuation; returns the instance's entry state as a target.
  SurfaceTarget instantiate(const std::string &Callee,
                            const SurfaceTarget &Continuation) {
    auto SubIt = Subs.find(Callee);
    if (SubIt == Subs.end()) {
      Errors.push_back("call to unknown subparser '" + Callee + "'");
      return SurfaceTarget::reject();
    }
    const SubParser &Sub = *SubIt->second;

    std::string Key = Callee + "\x01" + targetKey(Continuation);
    auto MemoIt = Memo.find(Key);
    if (MemoIt != Memo.end())
      return SurfaceTarget::state(MemoIt->second);

    if (Depth >= MaxDepth) {
      Errors.push_back(
          "subparser call nesting exceeds depth " +
          std::to_string(MaxDepth) + " while expanding '" + Callee +
          "' — the continuation chain grows on every level, so the call "
          "structure is not expressible as a finite automaton");
      return SurfaceTarget::reject();
    }

    std::string Prefix = Callee + "$" + std::to_string(Instances++) + "$";
    std::string EntryName = Prefix + Sub.Entry;
    // Register before expanding the body: recursive calls with the same
    // continuation then resolve to this very instance (a loop).
    Memo.emplace(Key, EntryName);

    std::set<std::string> LocalNames;
    for (const SurfaceState &S : Sub.States)
      LocalNames.insert(S.Name);
    if (!LocalNames.count(Sub.Entry))
      Errors.push_back("subparser '" + Callee + "' entry state '" +
                       Sub.Entry + "' does not exist");

    ++Depth;
    for (const SurfaceState &S : Sub.States) {
      SurfaceState Copy = S;
      Copy.Name = Prefix + S.Name;
      rewriteState(Copy, Prefix, LocalNames, Continuation);
      Flat.push_back(std::move(Copy));
    }
    --Depth;
    return SurfaceTarget::state(EntryName);
  }

  const SurfaceProgram &Program;
  std::vector<std::string> &Errors;
  std::map<std::string, const SubParser *> Subs;
  std::map<std::string, std::string> Memo; ///< (callee, cont) → entry.
  std::vector<SurfaceState> Flat;
  size_t Instances = 0;
  size_t Depth = 0;
};

//===----------------------------------------------------------------------===//
// Pass 2: stack unrolling
//===----------------------------------------------------------------------===//

/// Duplicates states per reachable stack-index tuple, resolving stack
/// operations and references against the tracked indices.
class StackUnroller {
public:
  StackUnroller(const SurfaceProgram &Program,
                std::vector<SurfaceState> Input,
                std::map<std::string, size_t> &HeaderBits,
                std::vector<std::pair<std::string, size_t>> &HeaderOrder,
                std::vector<std::string> &Errors)
      : Program(Program), Input(std::move(Input)), Errors(Errors) {
    for (size_t I = 0; I < this->Input.size(); ++I) {
      if (!IndexOf.emplace(this->Input[I].Name, I).second)
        Errors.push_back("duplicate state name '" + this->Input[I].Name +
                         "'");
    }
    for (const auto &[Name, Decl] : Program.stacks()) {
      StackNames.push_back(Name);
      for (size_t I = 0; I < Decl.Slots; ++I) {
        HeaderBits[slotHeader(Name, I)] = Decl.Bits;
        HeaderOrder.emplace_back(slotHeader(Name, I), Decl.Bits);
      }
      HeaderBits[ovfHeader(Name)] = Decl.Bits;
      HeaderOrder.emplace_back(ovfHeader(Name), Decl.Bits);
    }
  }

  static std::string slotHeader(const std::string &Stack, size_t I) {
    return Stack + "$" + std::to_string(I);
  }
  static std::string ovfHeader(const std::string &Stack) {
    return Stack + "$ovf";
  }

  std::vector<SurfaceState> run(std::string &Entry) {
    if (StackNames.empty()) {
      // No stacks: pass through in program order (but still validate
      // element references). Order preservation keeps state ids stable
      // across a print→parse→elaborate round trip.
      std::vector<SurfaceState> Out;
      for (const SurfaceState &S : Input) {
        validateNoStackRefs(S);
        Out.push_back(S);
      }
      return Out;
    }
    if (IndexOf.find(Entry) == IndexOf.end()) {
      Errors.push_back("entry state '" + Entry + "' does not exist");
      return {};
    }

    std::vector<size_t> ZeroIdx(StackNames.size(), 0);
    Entry = enqueue(Entry, ZeroIdx);
    while (!Work.empty()) {
      auto [Name, Idx] = Work.front();
      Work.pop_front();
      expand(Name, Idx);
    }
    return std::move(Out);
  }

private:
  using IndexTuple = std::vector<size_t>;

  std::string copyName(const std::string &Base, const IndexTuple &Idx) {
    std::string Name = Base + "@";
    for (size_t I : Idx)
      Name += std::to_string(I) + ".";
    Name.pop_back();
    return Name;
  }

  size_t stackPos(const std::string &Stack) {
    for (size_t I = 0; I < StackNames.size(); ++I)
      if (StackNames[I] == Stack)
        return I;
    return SIZE_MAX;
  }

  /// Interns the copy of \p Base at \p Idx, scheduling expansion if new.
  std::string enqueue(const std::string &Base, const IndexTuple &Idx) {
    std::string Name = copyName(Base, Idx);
    if (Seen.insert(Name).second)
      Work.emplace_back(Base, Idx);
    return Name;
  }

  /// Resolves stack references in \p E at \p Idx. Sets \p Invalid on
  /// underflow (s.last with index 0).
  SExprRef resolveExpr(const SExprRef &E, const IndexTuple &Idx,
                       bool &Invalid) {
    switch (E->kind()) {
    case SExpr::Kind::Header:
    case SExpr::Kind::Literal:
      return E;
    case SExpr::Kind::StackLast: {
      size_t P = stackPos(E->name());
      if (P == SIZE_MAX) {
        Errors.push_back("reference to undeclared stack '" + E->name() +
                         "'");
        Invalid = true;
        return E;
      }
      if (Idx[P] == 0) {
        Invalid = true; // Underflow: no element has been extracted.
        return E;
      }
      return SExpr::mkHeader(slotHeader(E->name(), Idx[P] - 1));
    }
    case SExpr::Kind::StackElem: {
      size_t P = stackPos(E->name());
      if (P == SIZE_MAX) {
        Errors.push_back("reference to undeclared stack '" + E->name() +
                         "'");
        Invalid = true;
        return E;
      }
      size_t Slots = Program.findStack(E->name())->Slots;
      if (E->stackIndex() >= Slots) {
        Errors.push_back("stack element " + E->name() + "[" +
                         std::to_string(E->stackIndex()) +
                         "] is out of range (stack has " +
                         std::to_string(Slots) + " slots)");
        Invalid = true;
        return E;
      }
      return SExpr::mkHeader(slotHeader(E->name(), E->stackIndex()));
    }
    case SExpr::Kind::Slice: {
      SExprRef Op = resolveExpr(E->sliceOperand(), Idx, Invalid);
      return SExpr::mkSlice(Op, E->sliceLo(), E->sliceHi());
    }
    case SExpr::Kind::Concat: {
      SExprRef L = resolveExpr(E->concatLhs(), Idx, Invalid);
      SExprRef R = resolveExpr(E->concatRhs(), Idx, Invalid);
      return SExpr::mkConcat(L, R);
    }
    }
    return E;
  }

  void validateNoStackRefs(const SurfaceState &S) {
    IndexTuple Empty;
    bool Invalid = false;
    for (const SurfaceOp &O : S.Ops) {
      if (O.K == SurfaceOp::Kind::ExtractNext)
        Errors.push_back("state '" + S.Name + "' extracts into stack '" +
                         O.Target + "', which is not declared");
      if (O.K == SurfaceOp::Kind::Assign)
        (void)resolveExpr(O.Value, Empty, Invalid);
    }
    if (!S.Tz.IsGoto)
      for (const SExprRef &D : S.Tz.Discriminants)
        (void)resolveExpr(D, Empty, Invalid);
  }

  void expand(const std::string &Base, const IndexTuple &InIdx) {
    const SurfaceState &Orig = Input[IndexOf.at(Base)];
    SurfaceState Copy;
    Copy.Name = copyName(Base, InIdx);

    IndexTuple Idx = InIdx;
    bool Dead = false; // Overflow/underflow: state still consumes its
                       // bits, but transitions to reject.
    for (const SurfaceOp &O : Orig.Ops) {
      switch (O.K) {
      case SurfaceOp::Kind::Extract:
      case SurfaceOp::Kind::Lookahead:
        Copy.Ops.push_back(O);
        break;
      case SurfaceOp::Kind::ExtractNext: {
        size_t P = stackPos(O.Target);
        if (P == SIZE_MAX) {
          Errors.push_back("state '" + Base + "' extracts into '" +
                           O.Target + "', which is not a declared stack");
          return;
        }
        size_t Slots = Program.findStack(O.Target)->Slots;
        if (Idx[P] >= Slots) {
          // Overflow: the bits are still consumed (into the scratch
          // overflow header) but the packet is rejected.
          Copy.Ops.push_back(SurfaceOp::extract(ovfHeader(O.Target)));
          Dead = true;
        } else {
          Copy.Ops.push_back(
              SurfaceOp::extract(slotHeader(O.Target, Idx[P])));
          Idx[P] += 1;
        }
        break;
      }
      case SurfaceOp::Kind::Assign: {
        if (Dead)
          break; // Assignments are unobservable past a reject.
        bool Invalid = false;
        SExprRef V = resolveExpr(O.Value, Idx, Invalid);
        if (Invalid)
          Dead = true;
        else
          Copy.Ops.push_back(SurfaceOp::assign(O.Target, V));
        break;
      }
      }
    }

    if (Dead) {
      Copy.Tz = SurfaceTransition::mkGoto(SurfaceTarget::reject());
      Out.push_back(std::move(Copy));
      return;
    }

    // Transition: resolve discriminants at the post-op index, retarget
    // states to their copies at that index.
    auto Retarget = [&](const SurfaceTarget &T) -> SurfaceTarget {
      if (T.K != SurfaceTarget::Kind::State)
        return T;
      if (IndexOf.find(T.StateName) == IndexOf.end()) {
        Errors.push_back("unknown state '" + T.StateName + "'");
        return SurfaceTarget::reject();
      }
      return SurfaceTarget::state(enqueue(T.StateName, Idx));
    };
    if (Orig.Tz.IsGoto) {
      Copy.Tz = SurfaceTransition::mkGoto(Retarget(Orig.Tz.GotoTarget));
    } else {
      bool Invalid = false;
      std::vector<SExprRef> Ds;
      for (const SExprRef &D : Orig.Tz.Discriminants)
        Ds.push_back(resolveExpr(D, Idx, Invalid));
      if (Invalid) {
        Copy.Tz = SurfaceTransition::mkGoto(SurfaceTarget::reject());
      } else {
        std::vector<SurfaceCase> Cases;
        for (const SurfaceCase &C : Orig.Tz.Cases)
          Cases.push_back(SurfaceCase{C.Pats, Retarget(C.Target)});
        Copy.Tz = SurfaceTransition::mkSelect(std::move(Ds),
                                              std::move(Cases));
      }
    }
    Out.push_back(std::move(Copy));
  }

  const SurfaceProgram &Program;
  std::vector<SurfaceState> Input;
  std::map<std::string, size_t> IndexOf;
  std::vector<std::string> &Errors;
  std::vector<std::string> StackNames;
  std::deque<std::pair<std::string, IndexTuple>> Work;
  std::set<std::string> Seen;
  std::vector<SurfaceState> Out;
};

//===----------------------------------------------------------------------===//
// Pass 3: lookahead lowering
//===----------------------------------------------------------------------===//

/// Rewrites each state using lookahead into extracts followed by
/// reassembly assignments.
void lowerLookahead(std::vector<SurfaceState> &States,
                    const std::map<std::string, size_t> &HeaderBits,
                    std::vector<std::string> &Errors) {
  for (SurfaceState &S : States) {
    bool HasLookahead = false;
    for (const SurfaceOp &O : S.Ops)
      HasLookahead |= O.K == SurfaceOp::Kind::Lookahead;
    if (!HasLookahead)
      continue;

    // Shape check: lookaheads first, then extracts, then assignments.
    // This is the natural state layout; relaxing it would let an
    // assignment observe the lookahead target before the reassembly
    // assignment we generate, silently changing semantics.
    enum Phase { Las, Extracts, Assigns } Phase = Las;
    std::vector<std::string> LaTargets;
    std::vector<std::string> ExtractSeq;
    std::vector<SurfaceOp> Rest;
    bool Bad = false;
    for (const SurfaceOp &O : S.Ops) {
      switch (O.K) {
      case SurfaceOp::Kind::Lookahead:
        if (Phase != Las) {
          Errors.push_back("state '" + S.Name +
                           "': lookahead must precede all extracts and "
                           "assignments");
          Bad = true;
        }
        LaTargets.push_back(O.Target);
        break;
      case SurfaceOp::Kind::Extract:
        if (Phase == Assigns) {
          Errors.push_back("state '" + S.Name +
                           "': extracts may not follow assignments when "
                           "the state uses lookahead");
          Bad = true;
        }
        Phase = Extracts;
        ExtractSeq.push_back(O.Target);
        Rest.push_back(O);
        break;
      case SurfaceOp::Kind::Assign:
        Phase = Assigns;
        Rest.push_back(O);
        break;
      case SurfaceOp::Kind::ExtractNext:
        Errors.push_back("internal: stack op survived unrolling");
        Bad = true;
        break;
      }
    }
    if (Bad)
      continue;

    // The reassembly reads the extracted headers, so extracting twice
    // into one header would lose the first chunk.
    std::set<std::string> Dup(ExtractSeq.begin(), ExtractSeq.end());
    if (Dup.size() != ExtractSeq.size()) {
      Errors.push_back("state '" + S.Name +
                       "': lookahead requires distinct extract targets");
      continue;
    }

    size_t TotalBits = 0;
    for (const std::string &H : ExtractSeq) {
      auto It = HeaderBits.find(H);
      TotalBits += It == HeaderBits.end() ? 0 : It->second;
    }

    // Emit: extracts (in order), one reassembly per lookahead, then the
    // remaining assignments in their original order.
    std::vector<SurfaceOp> NewOps;
    std::vector<SurfaceOp> TailAssigns;
    for (SurfaceOp &O : Rest)
      (O.K == SurfaceOp::Kind::Extract ? NewOps : TailAssigns)
          .push_back(std::move(O));

    for (const std::string &La : LaTargets) {
      auto It = HeaderBits.find(La);
      if (It == HeaderBits.end()) {
        Errors.push_back("state '" + S.Name + "': lookahead target '" +
                         La + "' is not a declared header");
        continue;
      }
      size_t N = It->second;
      if (N > TotalBits) {
        Errors.push_back(
            "state '" + S.Name + "': lookahead of " + std::to_string(N) +
            " bits exceeds the state's extraction of " +
            std::to_string(TotalBits) +
            " bits (split the following state or widen this one)");
        continue;
      }
      // h := (e1 ++ ... ++ ek)[0 : N-1], covering just enough extracts.
      SExprRef E;
      size_t Covered = 0;
      for (const std::string &H : ExtractSeq) {
        if (Covered >= N)
          break;
        SExprRef Part = SExpr::mkHeader(H);
        E = E ? SExpr::mkConcat(E, Part) : Part;
        Covered += HeaderBits.at(H);
      }
      if (Covered > N)
        E = SExpr::mkSlice(E, 0, N - 1);
      NewOps.push_back(SurfaceOp::assign(La, E));
    }
    for (SurfaceOp &O : TailAssigns)
      NewOps.push_back(std::move(O));
    S.Ops = std::move(NewOps);
  }
}

//===----------------------------------------------------------------------===//
// Pass 4: conversion to p4a::Automaton
//===----------------------------------------------------------------------===//

class Converter {
public:
  Converter(const std::vector<std::pair<std::string, size_t>> &HeaderOrder,
            std::vector<std::string> &Errors)
      : HeaderOrder(HeaderOrder), Errors(Errors) {}

  p4a::Automaton convert(const std::vector<SurfaceState> &States) {
    p4a::Automaton Aut;
    // Declare only headers some state actually touches: unrolling
    // declares a slot header per stack element, but unreachable index
    // contexts would otherwise bloat the store (and the Table-2 "Total
    // bits" accounting) with never-referenced headers.
    std::set<std::string> Used;
    auto MarkExpr = [&](const SExprRef &E, auto &&Self) -> void {
      switch (E->kind()) {
      case SExpr::Kind::Header:
      case SExpr::Kind::StackLast:
      case SExpr::Kind::StackElem:
        Used.insert(E->name());
        break;
      case SExpr::Kind::Literal:
        break;
      case SExpr::Kind::Slice:
        Self(E->sliceOperand(), Self);
        break;
      case SExpr::Kind::Concat:
        Self(E->concatLhs(), Self);
        Self(E->concatRhs(), Self);
        break;
      }
    };
    for (const SurfaceState &S : States) {
      for (const SurfaceOp &O : S.Ops) {
        Used.insert(O.Target);
        if (O.Value)
          MarkExpr(O.Value, MarkExpr);
      }
      if (!S.Tz.IsGoto)
        for (const SExprRef &D : S.Tz.Discriminants)
          MarkExpr(D, MarkExpr);
    }
    // Declaration order, not name order: ids must match a program whose
    // declarations were written down in this order (see SurfaceProgram).
    for (const auto &[Name, Bits] : HeaderOrder) {
      if (!Used.count(Name))
        continue;
      if (Bits == 0) {
        Errors.push_back("header '" + Name + "' has zero width");
        continue;
      }
      Aut.addHeader(Name, Bits);
    }
    std::map<std::string, p4a::StateId> Ids;
    for (const SurfaceState &S : States)
      Ids[S.Name] = Aut.declareState(S.Name);

    auto Target = [&](const SurfaceTarget &T) -> p4a::StateRef {
      switch (T.K) {
      case SurfaceTarget::Kind::Accept:
        return p4a::StateRef::accept();
      case SurfaceTarget::Kind::Reject:
        return p4a::StateRef::reject();
      case SurfaceTarget::Kind::State: {
        auto It = Ids.find(T.StateName);
        if (It == Ids.end()) {
          Errors.push_back("unknown state '" + T.StateName + "'");
          return p4a::StateRef::reject();
        }
        return p4a::StateRef::normal(It->second);
      }
      case SurfaceTarget::Kind::Call:
        Errors.push_back("internal: call target survived inlining");
        return p4a::StateRef::reject();
      }
      return p4a::StateRef::reject();
    };

    for (const SurfaceState &S : States) {
      std::vector<p4a::Op> Ops;
      for (const SurfaceOp &O : S.Ops) {
        switch (O.K) {
        case SurfaceOp::Kind::Extract: {
          auto H = header(Aut, O.Target, S.Name);
          if (H)
            Ops.push_back(p4a::Op::extract(*H));
          break;
        }
        case SurfaceOp::Kind::Assign: {
          auto H = header(Aut, O.Target, S.Name);
          p4a::ExprRef E = convertExpr(Aut, O.Value, S.Name);
          if (H && E)
            Ops.push_back(p4a::Op::assign(*H, E));
          break;
        }
        case SurfaceOp::Kind::Lookahead:
        case SurfaceOp::Kind::ExtractNext:
          Errors.push_back("internal: unlowered op in state '" + S.Name +
                           "'");
          break;
        }
      }
      p4a::Transition Tz;
      if (S.Tz.IsGoto) {
        Tz = p4a::Transition::mkGoto(Target(S.Tz.GotoTarget));
      } else {
        std::vector<p4a::ExprRef> Ds;
        for (const SExprRef &D : S.Tz.Discriminants)
          if (p4a::ExprRef E = convertExpr(Aut, D, S.Name))
            Ds.push_back(E);
        std::vector<p4a::SelectCase> Cases;
        for (const SurfaceCase &C : S.Tz.Cases)
          Cases.push_back(p4a::SelectCase{C.Pats, Target(C.Target)});
        Tz = p4a::Transition::mkSelect(std::move(Ds), std::move(Cases));
      }
      Aut.setState(Ids[S.Name], std::move(Ops), std::move(Tz));
    }
    return Aut;
  }

private:
  std::optional<p4a::HeaderId> header(p4a::Automaton &Aut,
                                      const std::string &Name,
                                      const std::string &StateName) {
    auto H = Aut.findHeader(Name);
    if (!H)
      Errors.push_back("state '" + StateName +
                       "' references undeclared header '" + Name + "'");
    return H;
  }

  p4a::ExprRef convertExpr(p4a::Automaton &Aut, const SExprRef &E,
                           const std::string &StateName) {
    switch (E->kind()) {
    case SExpr::Kind::Header: {
      auto H = header(Aut, E->name(), StateName);
      return H ? p4a::Expr::mkHeader(*H) : nullptr;
    }
    case SExpr::Kind::Literal:
      return p4a::Expr::mkLiteral(E->literal());
    case SExpr::Kind::Slice: {
      p4a::ExprRef Op = convertExpr(Aut, E->sliceOperand(), StateName);
      return Op ? p4a::Expr::mkSlice(Op, E->sliceLo(), E->sliceHi())
                : nullptr;
    }
    case SExpr::Kind::Concat: {
      p4a::ExprRef L = convertExpr(Aut, E->concatLhs(), StateName);
      p4a::ExprRef R = convertExpr(Aut, E->concatRhs(), StateName);
      return L && R ? p4a::Expr::mkConcat(L, R) : nullptr;
    }
    case SExpr::Kind::StackLast:
    case SExpr::Kind::StackElem:
      Errors.push_back("internal: unresolved stack reference in state '" +
                       StateName + "'");
      return nullptr;
    }
    return nullptr;
  }

  const std::vector<std::pair<std::string, size_t>> &HeaderOrder;
  std::vector<std::string> &Errors;
};

/// Drops states unreachable from the entry. Inlining and unrolling both
/// over-approximate (memoized instances may lose all callers once their
/// continuations resolve; unrolling enqueues lazily so it is already
/// tight), and p4a typing rejects automata with undefined reachable
/// states either way — this keeps the output minimal and the state count
/// honest for Table-2-style reporting.
std::vector<SurfaceState>
pruneUnreachable(std::vector<SurfaceState> States,
                 const std::string &Entry) {
  std::map<std::string, const SurfaceState *> ByName;
  for (const SurfaceState &S : States)
    ByName[S.Name] = &S;
  std::set<std::string> Live;
  std::deque<std::string> Work;
  auto Visit = [&](const SurfaceTarget &T) {
    if (T.K == SurfaceTarget::Kind::State && Live.insert(T.StateName).second)
      Work.push_back(T.StateName);
  };
  if (ByName.count(Entry)) {
    Live.insert(Entry);
    Work.push_back(Entry);
  }
  while (!Work.empty()) {
    auto It = ByName.find(Work.front());
    Work.pop_front();
    if (It == ByName.end())
      continue;
    const SurfaceState &S = *It->second;
    if (S.Tz.IsGoto)
      Visit(S.Tz.GotoTarget);
    else
      for (const SurfaceCase &C : S.Tz.Cases)
        Visit(C.Target);
  }
  std::vector<SurfaceState> Out;
  for (SurfaceState &S : States)
    if (Live.count(S.Name))
      Out.push_back(std::move(S));
  return Out;
}

} // namespace

ElaborationResult frontend::elaborate(const SurfaceProgram &Program) {
  ElaborationResult Res;

  std::map<std::string, size_t> HeaderBits(Program.headers().begin(),
                                           Program.headers().end());
  // Declaration order (program headers, then per-stack slot headers as the
  // unroller mints them) — the order the Converter declares ids in.
  std::vector<std::pair<std::string, size_t>> HeaderOrder(
      Program.headers().begin(), Program.headers().end());
  for (const auto &[Name, Decl] : Program.stacks()) {
    if (Program.hasHeader(Name))
      Res.Errors.push_back("'" + Name +
                           "' is declared both as header and stack");
    if (Decl.Slots == 0 || Decl.Bits == 0)
      Res.Errors.push_back("stack '" + Name +
                           "' needs at least one slot and one bit");
  }

  // Pass 1: inline subparser calls.
  std::string Entry;
  std::vector<SurfaceState> Flat =
      Inliner(Program, Res.Errors).run(Entry);

  // Pass 2: unroll header stacks.
  StackUnroller Unroller(Program, std::move(Flat), HeaderBits, HeaderOrder,
                         Res.Errors);
  std::vector<SurfaceState> Unrolled = Unroller.run(Entry);

  // Pass 3: lower lookahead into reassembly assignments.
  lowerLookahead(Unrolled, HeaderBits, Res.Errors);

  if (!Res.Errors.empty())
    return Res;

  // Pass 4: prune and convert.
  Unrolled = pruneUnreachable(std::move(Unrolled), Entry);
  if (Unrolled.empty()) {
    Res.Errors.push_back("no states reachable from entry '" + Entry + "'");
    return Res;
  }
  Res.Aut = Converter(HeaderOrder, Res.Errors).convert(Unrolled);
  Res.Entry = Entry;
  if (!Res.Errors.empty())
    return Res;

  if (!p4a::isWellTyped(Res.Aut))
    Res.Errors.push_back(
        "elaborated automaton is ill-typed (⊬A) — most commonly a state "
        "that extracts no bits, which the paper's model forbids "
        "(§3.1: \"at least one call to extract\")");
  return Res;
}

ElaborationResult frontend::elaborateOrDie(const SurfaceProgram &Program) {
  ElaborationResult Res = elaborate(Program);
  if (!Res.ok()) {
    for (const std::string &E : Res.Errors)
      std::fprintf(stderr, "elaborate: %s\n", E.c_str());
    assert(false && "elaboration failed");
  }
  return Res;
}
