//===- Text.h - Textual front-end for surface parsers -----------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `.lfp` textual syntax for surface parsers (frontend/Surface.h): a
/// keyword grammar covering the full surface feature set — header stacks,
/// subparser calls, and lookahead — so parsers become data files instead
/// of C++ recompiles. The grammar (see docs/FRONTEND.md for the full
/// reference):
///
///   program   := (headerDecl | stackDecl | entryDecl | state | subparser)*
///   headerDecl:= "header" ident ":" number ";"
///   stackDecl := "stack" ident "[" number "]" ":" number ";"
///   entryDecl := "entry" ident ";"
///   state     := "state" ident "{" op* transition "}"
///   subparser := "subparser" ident "{" "entry" ident ";" state* "}"
///   op        := "extract" "(" ident ("." "next")? ")" ";"
///              | ident ":=" "lookahead" ";"
///              | ident ":=" expr ";"
///   transition:= "goto" target ";"
///              | "select" "(" expr ("," expr)* ")" "{" case* "}"
///   case      := pattern-tuple "=>" target ";"
///   target    := "accept" | "reject" | "call" ident ("->" ident)? | ident
///   expr      := atom ("++" atom)*
///   atom      := primary ("[" number ":" number "]")*      -- slice
///   primary   := "(" expr ")" | literal | ident
///              | ident "." "last" | ident "[" number "]"   -- stack refs
///
/// Literals are 0b/0x or bare binary; comments are `//` or `#` to end of
/// line, as in the p4a DSL. Diagnostics carry "line:col:" positions.
///
/// The printer and `surfaceFromP4a` are designed so that printing any
/// p4a::Automaton and re-parsing the text elaborates to an automaton with
/// identical header and state *ids* — which makes the checker's verdict,
/// statistics, and decision stream bit-identical across the round trip
/// (ids are rendered into the frontier keys; see core/FrontierKey.h).
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_FRONTEND_TEXT_H
#define LEAPFROG_FRONTEND_TEXT_H

#include "frontend/Surface.h"

#include <string>
#include <vector>

namespace leapfrog {
namespace frontend {

/// Outcome of parsing a textual surface program. The program is
/// meaningful only when ok(); diagnostics are "line:col: message" with
/// 1-based positions.
struct TextParseResult {
  SurfaceProgram Program;
  std::vector<std::string> Errors;

  bool ok() const { return Errors.empty(); }
};

/// Parses `.lfp` source into a surface program. Collects diagnostics
/// instead of throwing; parse-time checks cover unknown headers/stacks,
/// slice bounds, stack indices past capacity, and subparser call cycles
/// that grow their continuation chain (which elaboration could only
/// reject much later, with no source position).
TextParseResult parseSurface(const std::string &Source);

/// Like parseSurface(), but asserts success, printing diagnostics to
/// stderr on failure. For tests and examples.
SurfaceProgram parseSurfaceOrDie(const std::string &Source);

/// Renders \p Program in the `.lfp` syntax. parseSurface(printSurface(P))
/// reconstructs P with declarations, states, and subparsers in the same
/// order — the identity the golden round-trip tests pin down.
std::string printSurface(const SurfaceProgram &Program);

/// Wraps a plain P4 automaton as a surface program whose entry is
/// \p Entry. Headers and states keep their id order, so elaborating the
/// wrapper yields an automaton with the same header/state ids as \p Aut
/// — the cornerstone of the print→parse→elaborate→check round trip.
SurfaceProgram surfaceFromP4a(const p4a::Automaton &Aut,
                              const std::string &Entry);

} // namespace frontend
} // namespace leapfrog

#endif // LEAPFROG_FRONTEND_TEXT_H
