//===- Generate.h - Random surface-parser generation ------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random generation of well-typed surface parsers and of subtle
/// near-twins, feeding the differential fuzz harness: PR 3's random
/// sweeps proved that random inputs find real soundness bugs (the
/// TemplatePair::hash() collision), and the textual front-end lets every
/// failing pair be dumped as a pair of `.lfp` files that reproduce with
/// one leapfrog-cli command.
///
/// Generated programs draw from the full surface feature set — plain
/// extracts, assignments, selects, header stacks, subparser calls, and
/// lookahead — and are well-typed *by construction*: every state
/// extracts, assignment and pattern widths match, lookahead fits the
/// state's extraction, and subparsers never recurse with an explicit
/// continuation. elaborate() on any generated program must succeed; the
/// fuzz tests assert exactly that before checking.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_FRONTEND_GENERATE_H
#define LEAPFROG_FRONTEND_GENERATE_H

#include "frontend/Surface.h"

#include <cstdint>
#include <string>

namespace leapfrog {
namespace frontend {

/// Generates a random well-typed surface program from \p Seed. The same
/// seed always yields the same program (the fuzz harness prints failing
/// seeds so runs reproduce exactly).
SurfaceProgram generateProgram(uint64_t Seed);

/// Returns \p Program with every main-parser state renamed (Name +
/// \p Suffix), targets and subparser continuations rewritten to match.
/// Renaming preserves the accepted language exactly, so the pair
/// (Program, renameStates(Program)) is equivalent by construction — the
/// fuzz harness's positive control.
SurfaceProgram renameStates(const SurfaceProgram &Program,
                            const std::string &Suffix);

/// Applies one random semantics-affecting-but-well-typed mutation drawn
/// from \p Seed: flip a pattern bit, swap or drop a select case,
/// retarget a transition, or shift a slice window. The result still
/// elaborates; whether it is equivalent to \p Program is deliberately
/// unknown — the differential harness only asserts that every
/// (jobs, backend) configuration returns the *same* verdict.
SurfaceProgram mutateProgram(const SurfaceProgram &Program, uint64_t Seed);

} // namespace frontend
} // namespace leapfrog

#endif // LEAPFROG_FRONTEND_GENERATE_H
