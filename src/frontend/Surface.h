//===- Surface.h - Extended surface syntax for parsers ----------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A surface-level parser language extending P4 automata with the three P4
/// features the paper's §7.3 names as absent from the core model:
///
///   "P4 parsers support arrays (in the form of header stacks), subparser
///    calls, and parser lookahead, all of which are not part of our
///    definition of P4 automata. More work is necessary to see whether
///    P4As can be extended to support or simulate these features."
///
/// All three are *simulated* by elaboration into plain P4As (Elaborate.h):
///
///  * header stacks  — `extract(stack.next)` / `stack.last` / `stack[i]`,
///    unrolled by duplicating states per stack index (the paper's §2
///    remark that stacks "can be emulated");
///  * subparser calls — transition targets of the form "call P, then
///    continue at k", eliminated by inlining;
///  * lookahead      — `h := lookahead` peeks sz(h) bits without
///    consuming, lowered to a reassembly assignment over the bits the
///    state extracts anyway.
///
/// Because elaboration produces ordinary P4As, the equivalence checker —
/// and every theorem it produces — applies to surface parsers unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_FRONTEND_SURFACE_H
#define LEAPFROG_FRONTEND_SURFACE_H

#include "p4a/Syntax.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace leapfrog {
namespace frontend {

class SExpr;
using SExprRef = std::shared_ptr<const SExpr>;

/// A surface expression: the p4a expression grammar, name-based, plus
/// stack element references (`stack.last`, `stack[i]`) that elaboration
/// resolves against the tracked stack index.
class SExpr {
public:
  enum class Kind { Header, StackLast, StackElem, Literal, Slice, Concat };

  Kind kind() const { return K; }

  const std::string &name() const {
    assert((K == Kind::Header || K == Kind::StackLast ||
            K == Kind::StackElem) &&
           "expression has no name");
    return Name;
  }
  size_t stackIndex() const {
    assert(K == Kind::StackElem && "not a stack element");
    return Index;
  }
  const Bitvector &literal() const {
    assert(K == Kind::Literal && "not a literal");
    return Lit;
  }
  const SExprRef &sliceOperand() const {
    assert(K == Kind::Slice && "not a slice");
    return Lhs;
  }
  size_t sliceLo() const { return Lo; }
  size_t sliceHi() const { return Hi; }
  const SExprRef &concatLhs() const {
    assert(K == Kind::Concat && "not a concat");
    return Lhs;
  }
  const SExprRef &concatRhs() const {
    assert(K == Kind::Concat && "not a concat");
    return Rhs;
  }

  static SExprRef mkHeader(std::string Name);
  /// `stack.last`: the most recently extracted element of \p Stack.
  static SExprRef mkStackLast(std::string Stack);
  /// `stack[i]`: the i-th element of \p Stack (0-based).
  static SExprRef mkStackElem(std::string Stack, size_t Index);
  static SExprRef mkLiteral(Bitvector BV);
  static SExprRef mkSlice(SExprRef E, size_t Lo, size_t Hi);
  static SExprRef mkConcat(SExprRef L, SExprRef R);

private:
  SExpr() = default;

  Kind K = Kind::Literal;
  std::string Name;
  size_t Index = 0;
  Bitvector Lit;
  SExprRef Lhs, Rhs;
  size_t Lo = 0, Hi = 0;
};

/// A surface operation.
struct SurfaceOp {
  enum class Kind {
    Extract,     ///< extract(header)
    ExtractNext, ///< extract(stack.next): fill the next free slot
    Assign,      ///< header := expr
    Lookahead,   ///< header := lookahead: peek sz(header) bits
  };

  Kind K;
  std::string Target; ///< Header name (Extract/Assign/Lookahead) or stack.
  SExprRef Value;     ///< Assign only.

  static SurfaceOp extract(std::string H) {
    return SurfaceOp{Kind::Extract, std::move(H), nullptr};
  }
  static SurfaceOp extractNext(std::string Stack) {
    return SurfaceOp{Kind::ExtractNext, std::move(Stack), nullptr};
  }
  static SurfaceOp assign(std::string H, SExprRef E) {
    return SurfaceOp{Kind::Assign, std::move(H), std::move(E)};
  }
  static SurfaceOp lookahead(std::string H) {
    return SurfaceOp{Kind::Lookahead, std::move(H), nullptr};
  }
};

/// A transition target: a state, a terminal, or a subparser call with an
/// explicit continuation.
struct SurfaceTarget {
  enum class Kind { State, Accept, Reject, Call };

  Kind K = Kind::Reject;
  std::string StateName; ///< Kind::State.
  std::string Callee;    ///< Kind::Call: subparser to run.
  /// Kind::Call: where the callee's accept resumes; empty = accept.
  std::string ContinueAt;

  static SurfaceTarget state(std::string Name) {
    SurfaceTarget T;
    T.K = Kind::State;
    T.StateName = std::move(Name);
    return T;
  }
  static SurfaceTarget accept() { return SurfaceTarget{Kind::Accept, {}, {}, {}}; }
  static SurfaceTarget reject() { return SurfaceTarget{Kind::Reject, {}, {}, {}}; }
  static SurfaceTarget call(std::string Callee, std::string ContinueAt = "") {
    SurfaceTarget T;
    T.K = Kind::Call;
    T.Callee = std::move(Callee);
    T.ContinueAt = std::move(ContinueAt);
    return T;
  }
};

struct SurfaceCase {
  std::vector<p4a::Pattern> Pats;
  SurfaceTarget Target;
};

struct SurfaceTransition {
  bool IsGoto = true;
  SurfaceTarget GotoTarget = SurfaceTarget::reject();
  std::vector<SExprRef> Discriminants;
  std::vector<SurfaceCase> Cases;

  static SurfaceTransition mkGoto(SurfaceTarget T) {
    SurfaceTransition Tz;
    Tz.IsGoto = true;
    Tz.GotoTarget = std::move(T);
    return Tz;
  }
  static SurfaceTransition mkSelect(std::vector<SExprRef> Discriminants,
                                    std::vector<SurfaceCase> Cases) {
    SurfaceTransition Tz;
    Tz.IsGoto = false;
    Tz.Discriminants = std::move(Discriminants);
    Tz.Cases = std::move(Cases);
    return Tz;
  }
};

struct SurfaceState {
  std::string Name;
  std::vector<SurfaceOp> Ops;
  SurfaceTransition Tz;
};

/// A named subparser: a state list with a designated entry state. State
/// names are scoped to the subparser.
struct SubParser {
  std::string Name;
  std::string Entry;
  std::vector<SurfaceState> States;
};

/// A surface program: global header/stack declarations, the main parser's
/// states, and any subparsers reachable via call targets.
///
/// Declarations keep their insertion order, and elaboration declares
/// automaton headers and states in that order. This is load-bearing for
/// the textual front-end (frontend/Text.h): a program printed from an
/// existing p4a::Automaton and re-parsed elaborates to an automaton with
/// the *same* header and state ids, so the checker's decision stream —
/// which renders ids — is bit-identical across the round trip.
class SurfaceProgram {
public:
  struct StackDecl {
    size_t Slots = 0;
    size_t Bits = 0;
  };

  /// Declares a header named \p Name of \p Bits bits (idempotent and
  /// order-preserving; conflicting widths are an elaboration error).
  void addHeader(const std::string &Name, size_t Bits) {
    auto [It, Inserted] = HeaderIndex.emplace(Name, Headers.size());
    if (Inserted)
      Headers.emplace_back(Name, Bits);
    else
      Headers[It->second].second = Bits;
  }

  /// Declares a stack of \p Slots elements, each \p Bits wide.
  void addStack(const std::string &Name, size_t Slots, size_t Bits) {
    auto [It, Inserted] = StackIndex.emplace(Name, Stacks.size());
    if (Inserted)
      Stacks.emplace_back(Name, StackDecl{Slots, Bits});
    else
      Stacks[It->second].second = StackDecl{Slots, Bits};
  }

  void addState(SurfaceState S) { Main.push_back(std::move(S)); }
  void addSubParser(SubParser P) { Subs.push_back(std::move(P)); }
  void setEntry(std::string State) { Entry = std::move(State); }

  /// Header declarations in declaration order.
  const std::vector<std::pair<std::string, size_t>> &headers() const {
    return Headers;
  }
  /// Stack declarations in declaration order.
  const std::vector<std::pair<std::string, StackDecl>> &stacks() const {
    return Stacks;
  }
  bool hasHeader(const std::string &Name) const {
    return HeaderIndex.count(Name) != 0;
  }
  std::optional<size_t> headerBits(const std::string &Name) const {
    auto It = HeaderIndex.find(Name);
    if (It == HeaderIndex.end())
      return std::nullopt;
    return Headers[It->second].second;
  }
  const StackDecl *findStack(const std::string &Name) const {
    auto It = StackIndex.find(Name);
    return It == StackIndex.end() ? nullptr : &Stacks[It->second].second;
  }
  const std::vector<SurfaceState> &mainStates() const { return Main; }
  const std::vector<SubParser> &subParsers() const { return Subs; }
  const std::string &entry() const { return Entry; }

private:
  std::vector<std::pair<std::string, size_t>> Headers;
  std::vector<std::pair<std::string, StackDecl>> Stacks;
  std::map<std::string, size_t> HeaderIndex;
  std::map<std::string, size_t> StackIndex;
  std::vector<SurfaceState> Main;
  std::vector<SubParser> Subs;
  std::string Entry;
};

} // namespace frontend
} // namespace leapfrog

#endif // LEAPFROG_FRONTEND_SURFACE_H
