//===- Surface.cpp - Extended surface syntax for parsers -------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "frontend/Surface.h"

using namespace leapfrog;
using namespace leapfrog::frontend;

SExprRef SExpr::mkHeader(std::string Name) {
  auto E = std::shared_ptr<SExpr>(new SExpr());
  E->K = Kind::Header;
  E->Name = std::move(Name);
  return E;
}

SExprRef SExpr::mkStackLast(std::string Stack) {
  auto E = std::shared_ptr<SExpr>(new SExpr());
  E->K = Kind::StackLast;
  E->Name = std::move(Stack);
  return E;
}

SExprRef SExpr::mkStackElem(std::string Stack, size_t Index) {
  auto E = std::shared_ptr<SExpr>(new SExpr());
  E->K = Kind::StackElem;
  E->Name = std::move(Stack);
  E->Index = Index;
  return E;
}

SExprRef SExpr::mkLiteral(Bitvector BV) {
  auto E = std::shared_ptr<SExpr>(new SExpr());
  E->K = Kind::Literal;
  E->Lit = std::move(BV);
  return E;
}

SExprRef SExpr::mkSlice(SExprRef Operand, size_t Lo, size_t Hi) {
  assert(Lo <= Hi && "slice bounds out of order");
  auto E = std::shared_ptr<SExpr>(new SExpr());
  E->K = Kind::Slice;
  E->Lhs = std::move(Operand);
  E->Lo = Lo;
  E->Hi = Hi;
  return E;
}

SExprRef SExpr::mkConcat(SExprRef L, SExprRef R) {
  auto E = std::shared_ptr<SExpr>(new SExpr());
  E->K = Kind::Concat;
  E->Lhs = std::move(L);
  E->Rhs = std::move(R);
  return E;
}
