//===- Elaborate.h - Surface-to-P4A elaboration -----------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles surface programs (Surface.h) into plain P4 automata through
/// three passes, each eliminating one extension:
///
///  1. Call inlining — every `call P, continue at k` target is replaced by
///     a fresh instance of P's states whose accept transitions are rewired
///     to k. Instances are memoized on (callee, continuation), so parsers
///     that re-enter a subparser with the same continuation elaborate to
///     loops rather than infinite expansions; genuinely unbounded call
///     nesting (a continuation chain that grows on every level) is
///     rejected with a depth diagnostic.
///
///  2. Stack unrolling — each state that touches a header stack is
///     duplicated per reachable stack-index tuple; `extract(s.next)` at
///     index i writes the slot header s$i and moves its successors to
///     index i+1. Overflow (extract past the last slot) and underflow
///     (`s.last` with no element extracted) transition to reject,
///     mirroring P4's verify-style error semantics while still consuming
///     the state's bits. This realizes the paper's §2 remark that header
///     stacks "can be emulated".
///
///  3. Lookahead lowering — `h := lookahead` peeks sz(h) upcoming bits.
///     Since the state extracts those bits anyway (enforced: the lookahead
///     width must fit in the state's extraction), the peek becomes a
///     reassembly assignment h := (e1 ++ ... ++ ek)[0 : sz(h)−1] placed
///     after the extracts.
///
/// The result is an ordinary p4a::Automaton, so equivalence checking — and
/// any certificate it produces — applies to surface parsers verbatim.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_FRONTEND_ELABORATE_H
#define LEAPFROG_FRONTEND_ELABORATE_H

#include "frontend/Surface.h"

#include <string>
#include <vector>

namespace leapfrog {
namespace frontend {

/// Outcome of elaboration. The automaton is meaningful only when ok().
struct ElaborationResult {
  p4a::Automaton Aut;
  /// Elaborated name of the surface entry state (stack unrolling renames
  /// states when the program declares stacks).
  std::string Entry;
  std::vector<std::string> Errors;

  bool ok() const { return Errors.empty(); }
};

/// Runs the full pipeline on \p Program. All diagnostics are collected
/// rather than thrown; on any error the partially-built automaton must
/// not be used.
ElaborationResult elaborate(const SurfaceProgram &Program);

/// Like elaborate(), but asserts success, printing diagnostics to stderr
/// on failure. For tests and examples.
ElaborationResult elaborateOrDie(const SurfaceProgram &Program);

} // namespace frontend
} // namespace leapfrog

#endif // LEAPFROG_FRONTEND_ELABORATE_H
