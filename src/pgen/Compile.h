//===- Compile.h - Compiling P4 automata to hardware tables -----*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An independently-written compiler from (byte-aligned, assignment-free)
/// P4 automata to the TCAM programs of Hw.h — the role parser-gen's
/// compiler plays in the paper's translation-validation study (§7.2).
/// Like parser-gen, it "models constraints at the hardware level ... and
/// incorporates sophisticated optimizations to make the best use of
/// limited resources (e.g., splitting and merging states)": a state whose
/// select scrutinizes headers extracted by an *earlier* state cannot be
/// matched by a single TCAM lookup window, so the compiler merges it into
/// each predecessor path, multiplying entries and widening the window —
/// exactly the kind of semantic-preserving-but-hard-to-eyeball
/// transformation translation validation exists to check.
///
/// The compiler's output is deliberately *not* trusted anywhere: the
/// pipeline is  P4A --compile--> HwTable --backTranslate--> P4A, and the
/// Leapfrog checker decides whether the round trip preserved the language
/// (Figure 8).
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_PGEN_COMPILE_H
#define LEAPFROG_PGEN_COMPILE_H

#include "p4a/Syntax.h"
#include "pgen/Hw.h"

#include <string>
#include <vector>

namespace leapfrog {
namespace pgen {

/// Result of compilation; Table is meaningful only when ok().
struct CompileResult {
  HwTable Table;
  /// Human-readable name per hardware state id (the macro path it came
  /// from), for debugging and the Figure 8 printer.
  std::vector<std::string> StateNames;
  std::vector<std::string> Diagnostics;

  bool ok() const { return Diagnostics.empty(); }
};

/// Compiles \p Aut starting at \p Start. Requirements (diagnosed, not
/// asserted): every reachable state consumes a whole number of bytes, has
/// no assignment operations, and select discriminants are built from
/// slices/concats of headers extracted on the current (merged) path.
CompileResult compileToHw(const p4a::Automaton &Aut, p4a::StateId Start);

} // namespace pgen
} // namespace leapfrog

#endif // LEAPFROG_PGEN_COMPILE_H
