//===- Compile.cpp - Compiling P4 automata to hardware tables -------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "pgen/Compile.h"

#include <deque>
#include <map>

using namespace leapfrog;
using namespace leapfrog::pgen;
using p4a::StateId;
using p4a::StateRef;

namespace {

/// A bit constrained by the accumulated match condition.
struct CondBit {
  size_t Pos;
  bool Value;
};

class Compiler {
public:
  Compiler(const p4a::Automaton &Aut, StateId Start) : Aut(Aut) {
    idFor(StateRef::normal(Start));
    while (!Work.empty() && Res.Diagnostics.size() < 10) {
      StateId Root = Work.front();
      Work.pop_front();
      emitPath(HwIds[Root], {Root}, {});
    }
    Res.Table.NumStates = Res.StateNames.size();
  }

  CompileResult take() { return std::move(Res); }

private:
  void diag(const std::string &Msg) { Res.Diagnostics.push_back(Msg); }

  /// Hardware id for a transition target; queues new roots.
  uint16_t idFor(StateRef T) {
    if (T.isAccept())
      return HwAccept;
    if (T.isReject())
      return HwReject;
    auto It = HwIds.find(T.Id);
    if (It != HwIds.end())
      return It->second;
    uint16_t Id = uint16_t(Res.StateNames.size());
    assert(Id < HwReject && "hardware state ids exhausted");
    HwIds.emplace(T.Id, Id);
    Res.StateNames.push_back(Aut.stateName(T.Id));
    Work.push_back(T.Id);
    return Id;
  }

  /// Header → window bit offset of its most recent extraction along the
  /// path; windowBits returns the total path window.
  std::map<p4a::HeaderId, size_t>
  pathOffsets(const std::vector<StateId> &Path, size_t &WindowBits) {
    std::map<p4a::HeaderId, size_t> Offs;
    size_t Cursor = 0;
    for (StateId Q : Path)
      for (const p4a::Op &O : Aut.state(Q).Ops) {
        if (O.K != p4a::Op::Kind::Extract) {
          diag("state '" + Aut.stateName(Q) +
               "': assignments are not supported by the hardware target");
          continue;
        }
        Offs[O.Target] = Cursor;
        Cursor += Aut.headerSize(O.Target);
      }
    WindowBits = Cursor;
    return Offs;
  }

  /// Resolves a discriminant expression to window bit positions
  /// (MSB-first), or nullopt if it references data outside the window.
  std::optional<std::vector<size_t>>
  exprBits(const p4a::ExprRef &E,
           const std::map<p4a::HeaderId, size_t> &Offs) {
    switch (E->kind()) {
    case p4a::Expr::Kind::Header: {
      auto It = Offs.find(E->header());
      if (It == Offs.end())
        return std::nullopt;
      std::vector<size_t> Bits(Aut.headerSize(E->header()));
      for (size_t I = 0; I < Bits.size(); ++I)
        Bits[I] = It->second + I;
      return Bits;
    }
    case p4a::Expr::Kind::Slice: {
      auto Sub = exprBits(E->sliceOperand(), Offs);
      if (!Sub || Sub->empty())
        return Sub;
      size_t Lo = std::min(E->sliceLo(), Sub->size() - 1);
      size_t Hi = std::min(E->sliceHi(), Sub->size() - 1);
      if (Lo > Hi)
        return std::vector<size_t>{};
      return std::vector<size_t>(Sub->begin() + Lo, Sub->begin() + Hi + 1);
    }
    case p4a::Expr::Kind::Concat: {
      auto L = exprBits(E->concatLhs(), Offs);
      auto R = exprBits(E->concatRhs(), Offs);
      if (!L || !R)
        return std::nullopt;
      L->insert(L->end(), R->begin(), R->end());
      return L;
    }
    case p4a::Expr::Kind::Literal:
      return std::nullopt; // The TCAM matches packet bits, not constants.
    }
    return std::nullopt;
  }

  /// True if every select discriminant of \p Q resolves within \p Q's own
  /// extraction window (no merge needed).
  bool selfContained(StateId Q) {
    const p4a::Transition &Tz = Aut.state(Q).Tz;
    if (Tz.IsGoto)
      return true;
    size_t W = 0;
    std::vector<StateId> Self{Q};
    auto Offs = pathOffsets(Self, W);
    for (const p4a::ExprRef &E : Tz.Discriminants)
      if (!exprBits(E, Offs))
        return false;
    return true;
  }

  void emitEntry(uint16_t HwId, const std::vector<CondBit> &Bits,
                 size_t WindowBits, uint16_t Next) {
    assert(WindowBits % 8 == 0 && "window is not byte aligned");
    TcamEntry E;
    E.State = HwId;
    E.AdvanceBytes = WindowBits / 8;
    E.MatchMask.assign(E.AdvanceBytes, 0);
    E.MatchValue.assign(E.AdvanceBytes, 0);
    for (const CondBit &B : Bits) {
      assert(B.Pos < WindowBits && "condition bit outside window");
      uint8_t Bit = uint8_t(0x80 >> (B.Pos % 8));
      bool Value = (E.MatchValue[B.Pos / 8] & Bit) != 0;
      if ((E.MatchMask[B.Pos / 8] & Bit) && Value != B.Value)
        return; // Contradictory condition: the entry can never match.
      E.MatchMask[B.Pos / 8] |= Bit;
      if (B.Value)
        E.MatchValue[B.Pos / 8] |= Bit;
    }
    E.NextState = Next;
    Res.Table.Entries.push_back(std::move(E));
  }

  /// Emits all entries of hardware state \p HwId for the merged \p Path,
  /// matching under the accumulated condition \p Acc.
  void emitPath(uint16_t HwId, std::vector<StateId> Path,
                std::vector<CondBit> Acc) {
    if (Path.size() > 6) {
      diag("merge depth exceeded at state '" +
           Aut.stateName(Path.back()) +
           "' (cyclic select dependency?)");
      return;
    }
    size_t WindowBits = 0;
    auto Offs = pathOffsets(Path, WindowBits);
    if (WindowBits % 8 != 0) {
      diag("merged window for state '" + Aut.stateName(Path.back()) +
           "' is " + std::to_string(WindowBits) +
           " bits; hardware windows are whole bytes");
      return;
    }
    StateId Q = Path.back();
    const p4a::Transition &Tz = Aut.state(Q).Tz;

    // Resolve one target: either a direct entry or a further merge, the
    // latter followed by a "commit" entry so that packets long enough to
    // select this case but too short for the merged window still reject —
    // matching the automaton, which commits to the case before buffering.
    auto Resolve = [&](StateRef T, std::vector<CondBit> Bits) {
      if (T.isNormal() && !selfContained(T.Id)) {
        std::vector<StateId> Extended = Path;
        Extended.push_back(T.Id);
        emitPath(HwId, std::move(Extended), Bits);
        emitEntry(HwId, Bits, WindowBits, HwReject);
        return;
      }
      emitEntry(HwId, Bits, WindowBits, idFor(T));
    };

    if (Tz.IsGoto) {
      Resolve(Tz.GotoTarget, Acc);
      return;
    }

    // Resolve discriminant bit positions once.
    std::vector<std::vector<size_t>> DiscrBits;
    for (const p4a::ExprRef &E : Tz.Discriminants) {
      auto Bits = exprBits(E, Offs);
      if (!Bits) {
        diag("state '" + Aut.stateName(Q) +
             "': select discriminant does not resolve within the merged "
             "window");
        return;
      }
      DiscrBits.push_back(std::move(*Bits));
    }

    for (const p4a::SelectCase &Case : Tz.Cases) {
      std::vector<CondBit> Bits = Acc;
      for (size_t I = 0; I < Case.Pats.size(); ++I) {
        const p4a::Pattern &P = Case.Pats[I];
        if (P.isWildcard())
          continue;
        assert(P.Exact->size() == DiscrBits[I].size() &&
               "pattern width mismatch (⊢T violated)");
        for (size_t B = 0; B < DiscrBits[I].size(); ++B)
          Bits.push_back(CondBit{DiscrBits[I][B], P.Exact->bit(B)});
      }
      Resolve(Case.Target, std::move(Bits));
    }
    // Select fall-through: no case matched.
    emitEntry(HwId, Acc, WindowBits, HwReject);
  }

  const p4a::Automaton &Aut;
  CompileResult Res;
  std::map<StateId, uint16_t> HwIds;
  std::deque<StateId> Work;
};

} // namespace

CompileResult pgen::compileToHw(const p4a::Automaton &Aut,
                                p4a::StateId Start) {
  return Compiler(Aut, Start).take();
}
