//===- Hw.h - parser-gen hardware parser tables -----------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A hardware-level packet parser in the style of parser-gen [Gibb et al.,
/// ANCS 2013], the third-party compiler the paper validates in §7.2
/// (Figure 8): a TCAM whose entries match on (current state, window
/// bytes) under a per-entry bit mask, and on a hit advance the cursor and
/// move to the next state.
///
/// The paper's translation-validation experiment needs (a) an
/// independently written compiler from parse graphs to such tables whose
/// output is *not* trusted, and (b) a back-translation from tables to P4
/// automata whose result Leapfrog compares against the original parser.
/// This module provides the table representation, its ground-truth
/// interpreter, and the Figure 8-style printer; Compile.h and
/// BackTranslate.h provide the two translations.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_PGEN_HW_H
#define LEAPFROG_PGEN_HW_H

#include "support/Bitvector.h"

#include <cstdint>
#include <string>
#include <vector>

namespace leapfrog {
namespace pgen {

/// Distinguished hardware state ids (Figure 8 prints accept as 255).
constexpr uint16_t HwAccept = 255;
constexpr uint16_t HwReject = 254;

/// One TCAM row: ternary match on the current state and the lookup
/// window, plus the actions taken on a hit.
struct TcamEntry {
  uint16_t State = 0;                 ///< Exact match on the state id.
  std::vector<uint8_t> MatchMask;     ///< Per-window-byte care bits.
  std::vector<uint8_t> MatchValue;    ///< Expected values under the mask.
  uint16_t NextState = HwReject;      ///< Target state / HwAccept/HwReject.
  size_t AdvanceBytes = 0;            ///< Cursor advance on a hit.

  /// True if this entry hits at \p Cursor in \p Bytes: the state matches,
  /// all AdvanceBytes consumed bytes are present, and the masked window
  /// bytes equal the expected values.
  bool matches(uint16_t CurState, const std::vector<uint8_t> &Bytes,
               size_t Cursor) const;
};

/// A complete hardware parser: a priority-ordered TCAM program.
struct HwTable {
  size_t NumStates = 0;               ///< User state ids are 0..NumStates-1.
  std::vector<TcamEntry> Entries;     ///< First match wins.

  /// Maximum lookup window of \p State (merged entries can consume more
  /// than their siblings).
  size_t windowBytes(uint16_t State) const;

  /// Renders rows in the style of Figure 8:
  ///   Match: ([ff,..],[08,..]) Next-State: 3/255 Adv: 14
  std::string print() const;
};

/// Ground-truth interpreter: runs \p Packet (a bit string; its length must
/// be a multiple of 8) through the table from state 0. The packet is
/// accepted iff a transition to HwAccept consumes exactly the final byte.
/// Running out of packet mid-window, exhausting the TCAM without a hit,
/// or reaching HwReject all reject.
bool hwAccepts(const HwTable &Table, const Bitvector &Packet);

} // namespace pgen
} // namespace leapfrog

#endif // LEAPFROG_PGEN_HW_H
