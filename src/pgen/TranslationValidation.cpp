//===- TranslationValidation.cpp - The Figure 8 pipeline ------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "pgen/TranslationValidation.h"

#include "parsers/CaseStudies.h"

using namespace leapfrog;
using namespace leapfrog::pgen;

TranslationValidation
pgen::buildTranslationValidation(const p4a::Automaton &Aut,
                                 const std::string &Start) {
  TranslationValidation TV;
  TV.Original = Aut;
  TV.OriginalStart = Start;

  auto StartId = Aut.findState(Start);
  if (!StartId) {
    TV.Diagnostics.push_back("unknown start state '" + Start + "'");
    return TV;
  }
  CompileResult Compiled = compileToHw(Aut, *StartId);
  for (const std::string &D : Compiled.Diagnostics)
    TV.Diagnostics.push_back("compile: " + D);
  if (!TV.Diagnostics.empty())
    return TV;
  TV.Table = std::move(Compiled.Table);

  BackTranslateResult Back = backTranslate(TV.Table);
  for (const std::string &D : Back.Diagnostics)
    TV.Diagnostics.push_back("back-translate: " + D);
  if (!TV.Diagnostics.empty())
    return TV;
  TV.Reconstructed = std::move(Back.Aut);
  TV.ReconstructedStart = Back.StartState;
  return TV;
}

TranslationValidation pgen::buildEdgeTranslationValidation() {
  return buildTranslationValidation(parsers::gibbEdge(), "eth");
}
