//===- TranslationValidation.h - The Figure 8 pipeline ----------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Glue for the §7.2 translation-validation experiment (Figure 8):
/// compile a parser to hardware tables, translate the tables back into a
/// P4 automaton, and hand both automata to the equivalence checker. The
/// compiler and back-translator are untrusted; the checker's certificate
/// is the validation.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_PGEN_TRANSLATIONVALIDATION_H
#define LEAPFROG_PGEN_TRANSLATIONVALIDATION_H

#include "pgen/BackTranslate.h"
#include "pgen/Compile.h"

namespace leapfrog {
namespace pgen {

/// Artifacts of one compile/back-translate round trip.
struct TranslationValidation {
  p4a::Automaton Original;
  std::string OriginalStart;
  HwTable Table;
  p4a::Automaton Reconstructed;
  std::string ReconstructedStart;
  std::vector<std::string> Diagnostics; ///< Empty on success.

  bool ok() const { return Diagnostics.empty(); }
};

/// Runs compile + back-translate on (\p Aut, \p Start).
TranslationValidation
buildTranslationValidation(const p4a::Automaton &Aut,
                           const std::string &Start);

/// The paper's instance: the Edge router parser (§7.2, Figure 8).
TranslationValidation buildEdgeTranslationValidation();

} // namespace pgen
} // namespace leapfrog

#endif // LEAPFROG_PGEN_TRANSLATIONVALIDATION_H
