//===- BackTranslate.h - Hardware tables back to P4 automata ----*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second leg of the Figure 8 pipeline: translating a TCAM program
/// back into a P4 automaton so Leapfrog can compare it against the source
/// parser. The paper calls this translation "fuzzy" (footnote 7) because
/// hardware tables are more permissive than P4As — entries of one state
/// may consume different byte counts (from state merging) and look ahead
/// speculatively. The back-translation reconstructs that structure as a
/// chain of chunk states: each hardware state becomes a state extracting
/// the smallest advance among its entries, selecting on the union of
/// masked bits visible in that window, and routing longer (merged)
/// entries to continuation states that extract the remainder.
///
/// The translation is *not* trusted: the equivalence checker decides
/// whether  original ≈ backTranslate(compile(original))  holds.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_PGEN_BACKTRANSLATE_H
#define LEAPFROG_PGEN_BACKTRANSLATE_H

#include "p4a/Syntax.h"
#include "pgen/Hw.h"

#include <string>
#include <vector>

namespace leapfrog {
namespace pgen {

/// Result of back-translation; Aut is meaningful only when ok().
struct BackTranslateResult {
  p4a::Automaton Aut;
  std::string StartState; ///< P4A state corresponding to hardware state 0.
  std::vector<std::string> Diagnostics;

  bool ok() const { return Diagnostics.empty(); }
};

/// Reconstructs a P4 automaton from \p Table. Requires the "grouped"
/// entry discipline produced by compileToHw (merged entries of one prefix
/// appear consecutively); violations are diagnosed.
BackTranslateResult backTranslate(const HwTable &Table);

} // namespace pgen
} // namespace leapfrog

#endif // LEAPFROG_PGEN_BACKTRANSLATE_H
