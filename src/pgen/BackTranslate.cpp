//===- BackTranslate.cpp - Hardware tables back to P4 automata ------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "pgen/BackTranslate.h"

#include <algorithm>
#include <map>

using namespace leapfrog;
using namespace leapfrog::pgen;
using p4a::StateRef;

namespace {

class BackTranslator {
public:
  explicit BackTranslator(const HwTable &Table) : Table(Table) {
    // One root P4A state per hardware state, in id order so forward
    // references resolve.
    std::map<uint16_t, std::vector<const TcamEntry *>> ByState;
    for (const TcamEntry &E : Table.Entries)
      ByState[E.State].push_back(&E);
    for (const auto &[Id, Entries] : ByState)
      Res.Aut.declareState(rootName(Id));
    for (const auto &[Id, Entries] : ByState)
      buildChunk(rootName(Id), Entries, /*ConsumedBytes=*/0);
    Res.StartState = rootName(0);
    if (ByState.find(0) == ByState.end())
      diag("hardware state 0 has no entries");
  }

  BackTranslateResult take() { return std::move(Res); }

private:
  static std::string rootName(uint16_t Id) {
    return "hw" + std::to_string(Id);
  }

  void diag(const std::string &Msg) { Res.Diagnostics.push_back(Msg); }

  StateRef targetOf(uint16_t Next) {
    if (Next == HwAccept)
      return StateRef::accept();
    if (Next == HwReject)
      return StateRef::reject();
    return StateRef::normal(Res.Aut.declareState(rootName(Next)));
  }

  /// Is window bit \p Pos set in the entry's mask / value?
  static bool maskBit(const TcamEntry &E, size_t Pos) {
    return Pos / 8 < E.MatchMask.size() &&
           (E.MatchMask[Pos / 8] & (0x80 >> (Pos % 8)));
  }
  static bool valueBit(const TcamEntry &E, size_t Pos) {
    return Pos / 8 < E.MatchValue.size() &&
           (E.MatchValue[Pos / 8] & (0x80 >> (Pos % 8)));
  }

  /// Builds the P4A state \p Name deciding among \p Entries, all of which
  /// have advance > \p ConsumedBytes and agree on their mask bits below
  /// ConsumedBytes (already matched by ancestors).
  void buildChunk(const std::string &Name,
                  const std::vector<const TcamEntry *> &Entries,
                  size_t ConsumedBytes) {
    if (Res.Diagnostics.size() >= 10)
      return;
    assert(!Entries.empty() && "chunk without entries");
    size_t MinAdv = SIZE_MAX;
    for (const TcamEntry *E : Entries)
      MinAdv = std::min(MinAdv, E->AdvanceBytes);
    if (MinAdv <= ConsumedBytes || MinAdv == SIZE_MAX) {
      diag("state '" + Name + "': inconsistent advances");
      return;
    }
    size_t ChunkBytes = MinAdv - ConsumedBytes;
    p4a::StateId Id = Res.Aut.declareState(Name);
    p4a::HeaderId Window = Res.Aut.addHeader(
        Name + "_w" + std::to_string(ConsumedBytes), ChunkBytes * 8);
    std::vector<p4a::Op> Ops{p4a::Op::extract(Window)};

    // Discriminant bits: union of mask bits within this chunk.
    std::vector<size_t> D;
    for (size_t Pos = ConsumedBytes * 8; Pos < MinAdv * 8; ++Pos)
      for (const TcamEntry *E : Entries)
        if (maskBit(*E, Pos)) {
          D.push_back(Pos);
          break;
        }

    // Group consecutive longer entries sharing a visible-bit pattern.
    struct Group {
      std::string Key;
      std::vector<const TcamEntry *> Members;
      std::string ContinuationName;
    };
    std::vector<p4a::SelectCase> Cases;
    std::vector<Group> Groups;
    size_t NextGroup = 0;
    auto PatternOf = [&](const TcamEntry &E) {
      p4a::SelectCase C;
      std::string Key;
      for (size_t Pos : D) {
        if (!maskBit(E, Pos)) {
          C.Pats.push_back(p4a::Pattern::wildcard());
          Key += '_';
        } else {
          bool V = valueBit(E, Pos);
          C.Pats.push_back(
              p4a::Pattern::exact(Bitvector::fromUint(V, 1)));
          Key += V ? '1' : '0';
        }
      }
      return std::make_pair(std::move(C), std::move(Key));
    };

    // TrailingGroup is the group the previous entry joined, if the run of
    // consecutive same-pattern longer entries is still open.
    int TrailingGroup = -1;
    for (const TcamEntry *E : Entries) {
      auto [Case, Key] = PatternOf(*E);
      if (E->AdvanceBytes == MinAdv) {
        Case.Target = targetOf(E->NextState);
        Cases.push_back(std::move(Case));
        TrailingGroup = -1;
        continue;
      }
      // Longer (merged) entry: joins the open trailing group when the
      // visible pattern matches, else opens a new continuation state.
      if (TrailingGroup >= 0 && Groups[TrailingGroup].Key == Key) {
        Groups[TrailingGroup].Members.push_back(E);
        continue;
      }
      Group G;
      G.Key = Key;
      G.Members.push_back(E);
      G.ContinuationName = Name + "_x" + std::to_string(NextGroup++);
      Case.Target =
          StateRef::normal(Res.Aut.declareState(G.ContinuationName));
      Cases.push_back(std::move(Case));
      TrailingGroup = int(Groups.size());
      Groups.push_back(std::move(G));
    }

    // Discriminants: one 1-bit slice of the window per decision bit.
    std::vector<p4a::ExprRef> Discriminants;
    for (size_t Pos : D) {
      size_t Local = Pos - ConsumedBytes * 8;
      Discriminants.push_back(p4a::Expr::mkSlice(
          p4a::Expr::mkHeader(Window), Local, Local));
    }

    p4a::Transition Tz;
    if (Discriminants.empty() && Cases.size() >= 1) {
      // No decision bits: priority makes the first entry unconditional.
      Tz = p4a::Transition::mkGoto(Cases.front().Target);
    } else if (Cases.empty()) {
      Tz = p4a::Transition::mkGoto(StateRef::reject());
    } else {
      Tz = p4a::Transition::mkSelect(std::move(Discriminants),
                                     std::move(Cases));
    }
    Res.Aut.setState(Id, std::move(Ops), std::move(Tz));

    for (const Group &G : Groups)
      buildChunk(G.ContinuationName, G.Members, MinAdv);
  }

  const HwTable &Table;
  BackTranslateResult Res;
};

} // namespace

BackTranslateResult pgen::backTranslate(const HwTable &Table) {
  return BackTranslator(Table).take();
}
