//===- Hw.cpp - parser-gen hardware parser tables -------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "pgen/Hw.h"

#include <cassert>
#include <cstdio>

using namespace leapfrog;
using namespace leapfrog::pgen;

bool TcamEntry::matches(uint16_t CurState, const std::vector<uint8_t> &Bytes,
                        size_t Cursor) const {
  if (CurState != State)
    return false;
  // An entry can only fire if the bytes it consumes are all present —
  // this is what makes a TCAM program with merged (multi-state) entries
  // agree with the bit-by-bit automaton semantics on truncated packets.
  if (Cursor + AdvanceBytes > Bytes.size())
    return false;
  assert(MatchMask.size() <= AdvanceBytes &&
         "mask looks past the consumed window");
  for (size_t I = 0; I < MatchMask.size(); ++I)
    if ((Bytes[Cursor + I] & MatchMask[I]) != (MatchValue[I] & MatchMask[I]))
      return false;
  return true;
}

size_t HwTable::windowBytes(uint16_t State) const {
  size_t Max = 0;
  for (const TcamEntry &E : Entries)
    if (E.State == State)
      Max = std::max(Max, E.AdvanceBytes);
  return Max;
}

std::string HwTable::print() const {
  std::string Out;
  char Buf[64];
  for (const TcamEntry &E : Entries) {
    std::string Mask, Value;
    for (size_t I = 0; I < E.MatchMask.size(); ++I) {
      std::snprintf(Buf, sizeof(Buf), "%s%02x", I ? ", " : "",
                    E.MatchMask[I]);
      Mask += Buf;
      std::snprintf(Buf, sizeof(Buf), "%s%02x", I ? ", " : "",
                    E.MatchValue[I]);
      Value += Buf;
    }
    std::snprintf(Buf, sizeof(Buf), "State: %3u  Match: ", unsigned(E.State));
    Out += Buf;
    Out += "([" + Mask + "], [" + Value + "])";
    std::snprintf(Buf, sizeof(Buf), "  Next-State: %u/255  Adv: %zu\n",
                  unsigned(E.NextState), E.AdvanceBytes);
    Out += Buf;
  }
  return Out;
}

bool pgen::hwAccepts(const HwTable &Table, const Bitvector &Packet) {
  assert(Packet.size() % 8 == 0 && "hardware parsers consume whole bytes");
  std::vector<uint8_t> Bytes(Packet.size() / 8, 0);
  for (size_t I = 0; I < Packet.size(); ++I)
    if (Packet.bit(I))
      Bytes[I / 8] |= uint8_t(0x80 >> (I % 8)); // Bit 0 is the byte's MSB.

  uint16_t State = 0;
  size_t Cursor = 0;
  // Every entry consumes at least one byte, so cycles are bounded by the
  // packet length; guard against malformed zero-advance tables anyway.
  for (size_t Cycle = 0; Cycle <= Bytes.size() + 1; ++Cycle) {
    const TcamEntry *Hit = nullptr;
    for (const TcamEntry &E : Table.Entries)
      if (E.matches(State, Bytes, Cursor)) {
        Hit = &E;
        break;
      }
    if (!Hit)
      return false; // TCAM miss (includes running out of packet).
    if (Hit->AdvanceBytes == 0)
      return false; // Malformed table; refuse to spin.
    Cursor += Hit->AdvanceBytes;
    if (Hit->NextState == HwAccept)
      return Cursor == Bytes.size();
    if (Hit->NextState == HwReject)
      return false;
    State = Hit->NextState;
  }
  return false; // Cycle bound exceeded (defensive; unreachable).
}
