//===- Bitvector.h - Arbitrary-width bit strings ----------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Defines Bitvector, the packed bit-string type used throughout the system.
///
/// The paper's semantic domain is {0,1}*: finite bit strings read from the
/// front of the packet. Bit 0 of a Bitvector is the *first* bit (the bit
/// that arrives first on the wire), matching the paper's zero-indexed slice
/// notation w[n1:n2] (Definition 3.1).
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SUPPORT_BITVECTOR_H
#define LEAPFROG_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace leapfrog {

/// An arbitrary-width bit string with paper-faithful slicing semantics.
///
/// Bits are stored packed, 64 per word; bit index 0 is the first bit of the
/// string. All widths are in bits. The empty bitvector (width 0) is the
/// paper's epsilon.
class Bitvector {
public:
  /// Constructs the empty bit string (epsilon).
  Bitvector() = default;

  /// Constructs an all-zero bit string of \p Width bits.
  explicit Bitvector(size_t Width) : Width(Width), Words(numWords(Width), 0) {}

  /// Constructs a bit string of \p Width bits whose contents spell \p Value
  /// most-significant-bit first (network order), i.e. bit 0 of the result is
  /// the MSB of the \p Width-bit truncation of \p Value. This matches how
  /// header field literals like 0x86dd are written in the paper's parsers.
  static Bitvector fromUint(uint64_t Value, size_t Width);

  /// Parses a string of '0'/'1' characters ("0101...") into a bitvector.
  /// Characters other than 0/1 (e.g. separators '_') are ignored.
  static Bitvector fromString(const std::string &Bits);

  /// Returns a bitvector of \p Width bits drawn from \p Rng-style generator
  /// output \p Raw (used by tests/benches to build deterministic packets).
  static Bitvector fromWords(const std::vector<uint64_t> &Raw, size_t Width);

  size_t size() const { return Width; }
  bool empty() const { return Width == 0; }

  /// Returns bit \p I (0 = first bit).
  bool bit(size_t I) const {
    assert(I < Width && "bit index out of range");
    return (Words[I >> 6] >> (I & 63)) & 1;
  }

  /// Sets bit \p I to \p Value.
  void setBit(size_t I, bool Value) {
    assert(I < Width && "bit index out of range");
    uint64_t Mask = uint64_t(1) << (I & 63);
    if (Value)
      Words[I >> 6] |= Mask;
    else
      Words[I >> 6] &= ~Mask;
  }

  /// Appends one bit at the end (the "read one more packet bit" operation
  /// of the configuration dynamics, Definition 3.5).
  void pushBack(bool Value);

  /// Returns this ++ Other (paper concatenation: Other's bits follow ours).
  Bitvector concat(const Bitvector &Other) const;

  /// Paper slice w[N1:N2] (Definition 3.1): the zero-indexed substring from
  /// min(N1, |w|-1) to min(N2, |w|-1) inclusive; empty when |w| = 0 or the
  /// clamped start exceeds the clamped end.
  Bitvector slice(size_t N1, size_t N2) const;

  /// Exact half-open subrange [Begin, End); asserts it is in bounds.
  /// Used internally where clamping semantics would mask bugs.
  Bitvector extract(size_t Begin, size_t End) const;

  /// Returns the first \p N bits; asserts N <= size().
  Bitvector takeFront(size_t N) const { return extract(0, N); }

  /// Returns everything after the first \p N bits; asserts N <= size().
  Bitvector dropFront(size_t N) const { return extract(N, Width); }

  /// Interprets the whole string as an MSB-first unsigned integer.
  /// Asserts size() <= 64.
  uint64_t toUint() const;

  /// Renders as a '0'/'1' string, first bit leftmost.
  std::string str() const;

  /// Stable hash of contents (for hashing-based containers and memo tables).
  size_t hash() const;

  bool operator==(const Bitvector &Other) const;
  bool operator!=(const Bitvector &Other) const { return !(*this == Other); }

  /// Lexicographic order (shorter strings first, then bit-wise); gives
  /// deterministic iteration when bitvectors key ordered containers.
  bool operator<(const Bitvector &Other) const;

private:
  static size_t numWords(size_t Bits) { return (Bits + 63) / 64; }

  /// Clears any junk bits above Width in the last word, preserving the
  /// invariant that equal contents imply equal words.
  void clearUnusedBits();

  size_t Width = 0;
  std::vector<uint64_t> Words;
};

/// Enumerates all 2^Width bitvectors of width \p Width in increasing
/// numeric order of their MSB-first value. Used by brute-force oracles in
/// tests; asserts Width <= 24 to keep enumeration sane.
std::vector<Bitvector> allBitvectors(size_t Width);

} // namespace leapfrog

namespace std {
template <> struct hash<leapfrog::Bitvector> {
  size_t operator()(const leapfrog::Bitvector &BV) const { return BV.hash(); }
};
} // namespace std

#endif // LEAPFROG_SUPPORT_BITVECTOR_H
