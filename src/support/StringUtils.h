//===- StringUtils.h - String formatting helpers ----------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formatting helpers shared by the pretty-printers (P4A text format,
/// ConfRel debug dumps, SMT-LIB emission).
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SUPPORT_STRINGUTILS_H
#define LEAPFROG_SUPPORT_STRINGUTILS_H

#include <string>
#include <vector>

namespace leapfrog {

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// True if \p S starts with \p Prefix.
bool startsWith(const std::string &S, const std::string &Prefix);

/// Strips ASCII whitespace from both ends.
std::string trim(const std::string &S);

/// Splits on any character in \p Delims, dropping empty pieces.
std::vector<std::string> splitAndTrim(const std::string &S,
                                      const std::string &Delims);

} // namespace leapfrog

#endif // LEAPFROG_SUPPORT_STRINGUTILS_H
