//===- StringUtils.cpp - String formatting helpers ------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"

#include <cctype>

using namespace leapfrog;

std::string leapfrog::join(const std::vector<std::string> &Parts,
                           const std::string &Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

bool leapfrog::startsWith(const std::string &S, const std::string &Prefix) {
  return S.size() >= Prefix.size() &&
         S.compare(0, Prefix.size(), Prefix) == 0;
}

std::string leapfrog::trim(const std::string &S) {
  size_t Begin = 0, End = S.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(S[Begin])))
    ++Begin;
  while (End > Begin && std::isspace(static_cast<unsigned char>(S[End - 1])))
    --End;
  return S.substr(Begin, End - Begin);
}

std::vector<std::string> leapfrog::splitAndTrim(const std::string &S,
                                                const std::string &Delims) {
  std::vector<std::string> Pieces;
  std::string Current;
  for (char C : S) {
    if (Delims.find(C) != std::string::npos) {
      std::string T = trim(Current);
      if (!T.empty())
        Pieces.push_back(T);
      Current.clear();
    } else {
      Current.push_back(C);
    }
  }
  std::string T = trim(Current);
  if (!T.empty())
    Pieces.push_back(T);
  return Pieces;
}
