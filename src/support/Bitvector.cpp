//===- Bitvector.cpp - Arbitrary-width bit strings ------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Bitvector.h"

#include <algorithm>

using namespace leapfrog;

Bitvector Bitvector::fromUint(uint64_t Value, size_t Width) {
  assert(Width <= 64 && "fromUint supports at most 64 bits");
  Bitvector BV(Width);
  for (size_t I = 0; I < Width; ++I) {
    // Bit 0 of the result is the MSB of the Width-bit value.
    bool Bit = (Value >> (Width - 1 - I)) & 1;
    BV.setBit(I, Bit);
  }
  return BV;
}

Bitvector Bitvector::fromString(const std::string &Bits) {
  Bitvector BV;
  for (char C : Bits) {
    if (C == '0')
      BV.pushBack(false);
    else if (C == '1')
      BV.pushBack(true);
  }
  return BV;
}

Bitvector Bitvector::fromWords(const std::vector<uint64_t> &Raw,
                               size_t Width) {
  Bitvector BV(Width);
  for (size_t I = 0; I < Width; ++I) {
    size_t W = I >> 6;
    uint64_t Word = W < Raw.size() ? Raw[W] : 0;
    BV.setBit(I, (Word >> (I & 63)) & 1);
  }
  return BV;
}

void Bitvector::pushBack(bool Value) {
  if (Width % 64 == 0)
    Words.push_back(0);
  ++Width;
  setBit(Width - 1, Value);
}

Bitvector Bitvector::concat(const Bitvector &Other) const {
  Bitvector Result(Width + Other.Width);
  for (size_t I = 0; I < Width; ++I)
    Result.setBit(I, bit(I));
  for (size_t I = 0; I < Other.Width; ++I)
    Result.setBit(Width + I, Other.bit(I));
  return Result;
}

Bitvector Bitvector::slice(size_t N1, size_t N2) const {
  if (Width == 0)
    return Bitvector();
  size_t Begin = std::min(N1, Width - 1);
  size_t End = std::min(N2, Width - 1);
  if (Begin > End)
    return Bitvector();
  return extract(Begin, End + 1);
}

Bitvector Bitvector::extract(size_t Begin, size_t End) const {
  assert(Begin <= End && End <= Width && "extract out of range");
  Bitvector Result(End - Begin);
  for (size_t I = Begin; I < End; ++I)
    Result.setBit(I - Begin, bit(I));
  return Result;
}

uint64_t Bitvector::toUint() const {
  assert(Width <= 64 && "toUint supports at most 64 bits");
  uint64_t Value = 0;
  for (size_t I = 0; I < Width; ++I)
    Value = (Value << 1) | uint64_t(bit(I));
  return Value;
}

std::string Bitvector::str() const {
  std::string S;
  S.reserve(Width);
  for (size_t I = 0; I < Width; ++I)
    S.push_back(bit(I) ? '1' : '0');
  return S;
}

size_t Bitvector::hash() const {
  // FNV-1a over the packed words plus the width.
  uint64_t H = 14695981039346656037ull;
  auto Mix = [&H](uint64_t V) {
    for (int B = 0; B < 8; ++B) {
      H ^= (V >> (B * 8)) & 0xff;
      H *= 1099511628211ull;
    }
  };
  Mix(Width);
  for (uint64_t W : Words)
    Mix(W);
  return size_t(H);
}

void Bitvector::clearUnusedBits() {
  if (Width % 64 != 0 && !Words.empty())
    Words.back() &= (uint64_t(1) << (Width % 64)) - 1;
}

bool Bitvector::operator==(const Bitvector &Other) const {
  return Width == Other.Width && Words == Other.Words;
}

bool Bitvector::operator<(const Bitvector &Other) const {
  if (Width != Other.Width)
    return Width < Other.Width;
  for (size_t I = 0; I < Width; ++I)
    if (bit(I) != Other.bit(I))
      return Other.bit(I);
  return false;
}

std::vector<Bitvector> leapfrog::allBitvectors(size_t Width) {
  assert(Width <= 24 && "enumeration is exponential; keep widths small");
  std::vector<Bitvector> All;
  All.reserve(size_t(1) << Width);
  for (uint64_t V = 0; V < (uint64_t(1) << Width); ++V)
    All.push_back(Bitvector::fromUint(V, Width));
  return All;
}
