//===- Compress.cpp - Self-contained LZSS byte compression ----------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "support/Compress.h"

#include <cstdint>
#include <cstring>
#include <vector>

using namespace leapfrog;

const char support::CompressMagic[5] = {'L', 'F', 'C', 'Z', '1'};

namespace {

constexpr size_t WindowSize = 4096; // 12-bit distances.
constexpr size_t MinMatch = 3;
constexpr size_t MaxMatch = 18; // MinMatch + 4-bit length field.

// Match finder: hash of the 3-byte prefix at each position, chained
// through Prev within the window. Bounded chain walks keep compression
// linear-ish; a missed match only costs ratio, never correctness.
constexpr size_t HashBits = 13;
constexpr size_t ChainLimit = 64;

inline uint32_t hash3(const unsigned char *P) {
  uint32_t H = P[0] | (uint32_t(P[1]) << 8) | (uint32_t(P[2]) << 16);
  return (H * 2654435761u) >> (32 - HashBits);
}

} // namespace

bool support::looksCompressed(const std::string &Blob) {
  return Blob.size() >= sizeof(CompressMagic) &&
         std::memcmp(Blob.data(), CompressMagic, sizeof(CompressMagic)) == 0;
}

std::string support::compress(const std::string &Raw) {
  std::string Out(CompressMagic, sizeof(CompressMagic));
  uint64_t N = Raw.size();
  for (int I = 0; I < 8; ++I)
    Out.push_back(char((N >> (8 * I)) & 0xff));

  const unsigned char *Data =
      reinterpret_cast<const unsigned char *>(Raw.data());
  std::vector<int32_t> Head(size_t(1) << HashBits, -1);
  std::vector<int32_t> Prev(Raw.size(), -1);

  size_t Pos = 0;
  while (Pos < Raw.size()) {
    size_t FlagAt = Out.size();
    Out.push_back('\0');
    unsigned char Flags = 0;
    for (int Bit = 0; Bit < 8 && Pos < Raw.size(); ++Bit) {
      size_t BestLen = 0, BestDist = 0;
      if (Pos + MinMatch <= Raw.size()) {
        uint32_t H = hash3(Data + Pos);
        int32_t Cand = Head[H];
        size_t Chain = ChainLimit;
        size_t Limit = std::min(MaxMatch, Raw.size() - Pos);
        while (Cand >= 0 && Chain-- > 0 &&
               Pos - size_t(Cand) <= WindowSize) {
          size_t Len = 0;
          while (Len < Limit && Data[Cand + Len] == Data[Pos + Len])
            ++Len;
          if (Len > BestLen) {
            BestLen = Len;
            BestDist = Pos - size_t(Cand);
            if (Len == Limit)
              break;
          }
          Cand = Prev[Cand];
        }
      }
      auto Insert = [&](size_t At) {
        if (At + MinMatch <= Raw.size()) {
          uint32_t H = hash3(Data + At);
          Prev[At] = Head[H];
          Head[H] = int32_t(At);
        }
      };
      if (BestLen >= MinMatch) {
        Flags |= 1u << Bit;
        Out.push_back(char(BestDist & 0xff));
        Out.push_back(char(((BestLen - MinMatch) & 0x0f) |
                           (((BestDist >> 8) & 0x0f) << 4)));
        for (size_t K = 0; K < BestLen; ++K)
          Insert(Pos + K);
        Pos += BestLen;
      } else {
        Out.push_back(char(Data[Pos]));
        Insert(Pos);
        ++Pos;
      }
    }
    Out[FlagAt] = char(Flags);
  }
  return Out;
}

bool support::decompress(const std::string &Blob, std::string &Raw,
                         std::string *Error) {
  Raw.clear();
  auto Fail = [&](const char *Why) {
    if (Error)
      *Error = Why;
    Raw.clear();
    return false;
  };
  if (!looksCompressed(Blob))
    return Fail("not an LFCZ1 container (bad magic)");
  size_t P = sizeof(CompressMagic);
  if (Blob.size() < P + 8)
    return Fail("truncated LFCZ1 header");
  uint64_t N = 0;
  for (int I = 0; I < 8; ++I)
    N |= uint64_t(static_cast<unsigned char>(Blob[P + I])) << (8 * I);
  P += 8;
  Raw.reserve(size_t(N));

  while (Raw.size() < N) {
    if (P >= Blob.size())
      return Fail("truncated LFCZ1 stream (missing flag byte)");
    unsigned char Flags = static_cast<unsigned char>(Blob[P++]);
    for (int Bit = 0; Bit < 8 && Raw.size() < N; ++Bit) {
      if (Flags & (1u << Bit)) {
        if (P + 2 > Blob.size())
          return Fail("truncated LFCZ1 stream (partial back-reference)");
        size_t Dist = static_cast<unsigned char>(Blob[P]) |
                      ((static_cast<unsigned char>(Blob[P + 1]) >> 4) << 8);
        size_t Len = (static_cast<unsigned char>(Blob[P + 1]) & 0x0f) +
                     MinMatch;
        P += 2;
        if (Dist == 0 || Dist > Raw.size())
          return Fail("LFCZ1 back-reference before start of output");
        if (Raw.size() + Len > N)
          return Fail("LFCZ1 stream overruns declared size");
        size_t From = Raw.size() - Dist;
        for (size_t K = 0; K < Len; ++K)
          Raw.push_back(Raw[From + K]);
      } else {
        if (P >= Blob.size())
          return Fail("truncated LFCZ1 stream (missing literal)");
        Raw.push_back(Blob[P++]);
      }
    }
  }
  if (Raw.size() != N)
    return Fail("LFCZ1 stream shorter than declared size");
  return true;
}
