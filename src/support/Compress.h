//===- Compress.h - Self-contained LZSS byte compression --------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, dependency-free byte compressor for on-disk artifacts — most
/// importantly the certificate store behind leapfrog-serve's `cert` op
/// (serve/Service.h) and the `--emit-cert` CLI output. Certificates are
/// line-oriented text full of repeated DIMACS literals and formula
/// fragments, which classic LZSS (a 4 KiB sliding window, 3..18-byte
/// back-references, flag-byte framing) compresses to a fraction of raw
/// size without pulling zlib into the build or into leapfrog-certcheck's
/// trusted base.
///
/// Container format, also decoded by the standalone verifier:
///
///   "LFCZ1"                         5-byte magic
///   rawsize                         uint64, little-endian
///   payload                         LZSS token stream
///
/// The token stream is groups of one flag byte followed by eight items,
/// LSB first: flag bit 0 = one literal byte; flag bit 1 = a two-byte
/// back-reference, 12-bit distance D (1-based, little-endian packed as
/// low byte then [len-3 : D>>8] nibbles) copying len in 3..18 bytes from
/// `out.size() - D`. Overlapping copies are well-defined (byte-at-a-time),
/// which is what makes runs compress. decompress() rejects anything
/// malformed — bad magic, truncated tokens, references before the start
/// of output, or a payload that does not reproduce exactly rawsize bytes —
/// so a corrupted store file surfaces as a structured error, never as
/// garbage handed to the certificate parser.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SUPPORT_COMPRESS_H
#define LEAPFROG_SUPPORT_COMPRESS_H

#include <string>

namespace leapfrog {
namespace support {

/// The 5-byte container magic ("LFCZ1").
extern const char CompressMagic[5];

/// True when \p Blob starts with the container magic (cheap sniff used to
/// accept both raw and compressed certificate payloads).
bool looksCompressed(const std::string &Blob);

/// Compresses \p Raw into a self-describing container (see file comment).
/// Never fails; incompressible input grows by at most 1/8 plus the header.
std::string compress(const std::string &Raw);

/// Decompresses a container produced by compress() into \p Raw. Returns
/// false (with a diagnostic in \p Error when given) on bad magic, a
/// truncated stream, an out-of-range back-reference, or a size mismatch
/// against the header. \p Raw is cleared first and is complete only when
/// the call returns true.
bool decompress(const std::string &Blob, std::string &Raw,
                std::string *Error = nullptr);

} // namespace support
} // namespace leapfrog

#endif // LEAPFROG_SUPPORT_COMPRESS_H
