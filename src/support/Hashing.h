//===- Hashing.h - Hash combining helpers -----------------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small hash-combining utilities used by the memo tables in the symbolic
/// equivalence checker (entailment cache, template pair sets).
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_SUPPORT_HASHING_H
#define LEAPFROG_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

namespace leapfrog {

/// Mixes \p Value into the running hash \p Seed (boost::hash_combine style,
/// with a 64-bit golden-ratio constant).
inline void hashCombine(size_t &Seed, size_t Value) {
  Seed ^= Value + 0x9e3779b97f4a7c15ull + (Seed << 6) + (Seed >> 2);
}

/// Hashes all arguments together with std::hash and hashCombine.
template <typename... Ts> size_t hashAll(const Ts &...Values) {
  size_t Seed = 0;
  (hashCombine(Seed, std::hash<Ts>{}(Values)), ...);
  return Seed;
}

/// std::hash-able pair, for unordered containers keyed by two values.
struct PairHash {
  template <typename A, typename B>
  size_t operator()(const std::pair<A, B> &P) const {
    return hashAll(P.first, P.second);
  }
};

} // namespace leapfrog

#endif // LEAPFROG_SUPPORT_HASHING_H
