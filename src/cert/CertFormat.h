//===- CertFormat.h - The LFCERT certificate wire format --------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constants and byte-level helpers for the serialized certificate format
/// shared by the engine-side writer (core/CertificateIo.h) and the
/// engine-free reader (cert/CertVerify.h, compiled into the standalone
/// leapfrog-certcheck binary). This header deliberately depends on
/// nothing but the standard library: it sits inside certcheck's trusted
/// base, which must not link the solver, the checker, or the logic layer.
///
/// A certificate is line-oriented text (optionally wrapped in the LFCZ1
/// compression container, support/Compress.h):
///
///   LFCERT 1
///   fingerprint <32 hex digits, or "-">
///   options leaps=<0|1> reach=<0|1>
///   headers <nLeft> <nRight>
///   hl <id> <width>                 x nLeft   (left header widths)
///   hr <id> <width>                 x nRight  (right header widths)
///   spec <escaped guarded formula>            (phi's guard and premise)
///   relation <N>
///   c <escaped guarded formula>     x N       (the conjuncts of R)
///   relhash <16 hex digits>                   (FNV-1a 64 of the c lines)
///   streams <M>
///   stream <index> <nEvents>
///     g <goalId> <actVar+1 | 0>               (goal opened; 0 = one-shot)
///     i <dimacs lits> 0                       (input clause)
///     l <dimacs lits> 0                       (learnt lemma; RUP check)
///     d <dimacs lits> 0                       (clause deleted)
///     u <goalId> <dimacs lits> 0              (goal UNSAT, with its core)
///     e <goalId>                              (goal SAT)
///     r                                       (solver incarnation reset)
///   endstream                       x M
///   trailer <N> <M> <relhash> <fingerprint>
///   LFCERT-END
///
/// The trailer repeats the header-declared counts, the relation hash and
/// the fingerprint, and LFCERT-END must be the last line — a truncated or
/// spliced file cannot end well-formed. There is deliberately no
/// whole-payload checksum: the verifier re-derives every structural and
/// RUP obligation from the body, so a tampered body must defeat the
/// semantic checks, not a hash it could simply recompute.
///
/// Escaping: formula lines pass through escapeLine/unescapeLine, which
/// protect backslash and newline so every record stays one line.
/// Literals are DIMACS: variable v (0-based in the engine) renders as
/// v+1, negated as -(v+1).
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_CERT_CERTFORMAT_H
#define LEAPFROG_CERT_CERTFORMAT_H

#include <cstdint>
#include <string>

namespace leapfrog {
namespace cert {

/// First and last line of every certificate.
extern const char CertMagic[];    // "LFCERT 1"
extern const char CertEndMark[];  // "LFCERT-END"

/// Escapes backslashes and newlines so \p S fits on one record line.
std::string escapeLine(const std::string &S);

/// Inverse of escapeLine. Returns false on a dangling escape.
bool unescapeLine(const std::string &S, std::string &Out);

/// FNV-1a (64-bit) over \p Bytes — the relation-hash primitive. Seeded
/// calls chain: pass the previous result to hash a sequence of lines.
uint64_t fnv1a64(const std::string &Bytes,
                 uint64_t Seed = 14695981039346656037ull);

/// 16 lowercase hex digits of \p V.
std::string hex64(uint64_t V);

} // namespace cert
} // namespace leapfrog

#endif // LEAPFROG_CERT_CERTFORMAT_H
