//===- CertFormat.cpp - The LFCERT certificate wire format ----------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "cert/CertFormat.h"

using namespace leapfrog;

const char cert::CertMagic[] = "LFCERT 1";
const char cert::CertEndMark[] = "LFCERT-END";

std::string cert::escapeLine(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '\n')
      Out += "\\n";
    else
      Out.push_back(C);
  }
  return Out;
}

bool cert::unescapeLine(const std::string &S, std::string &Out) {
  Out.clear();
  Out.reserve(S.size());
  for (size_t I = 0; I < S.size(); ++I) {
    if (S[I] != '\\') {
      Out.push_back(S[I]);
      continue;
    }
    if (I + 1 >= S.size())
      return false;
    ++I;
    if (S[I] == '\\')
      Out.push_back('\\');
    else if (S[I] == 'n')
      Out.push_back('\n');
    else
      return false;
  }
  return true;
}

uint64_t cert::fnv1a64(const std::string &Bytes, uint64_t Seed) {
  uint64_t H = Seed;
  for (char C : Bytes) {
    H ^= static_cast<unsigned char>(C);
    H *= 1099511628211ull;
  }
  return H;
}

std::string cert::hex64(uint64_t V) {
  static const char *Digits = "0123456789abcdef";
  std::string Out(16, '0');
  for (int I = 15; I >= 0; --I) {
    Out[I] = Digits[V & 0xf];
    V >>= 4;
  }
  return Out;
}
