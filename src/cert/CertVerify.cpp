//===- CertVerify.cpp - Engine-free certificate verification --------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "cert/CertVerify.h"

#include "cert/CertFormat.h"
#include "support/Compress.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace leapfrog;
using namespace leapfrog::cert;

namespace {

//===----------------------------------------------------------------------===//
// An independent deletion-aware RUP checker over DIMACS literals. This is
// certcheck's own propagation engine — written against the DRUP literature,
// not shared with smt/ — so a bug in the solver's checker cannot also hide
// here. Literals are nonzero ints; variable v is |l|, sign is polarity.
//===----------------------------------------------------------------------===//

class RupDb {
public:
  bool RootConflict = false;

  void reset() {
    Assign.clear();
    Clauses.clear();
    Watch.clear();
    Trail.clear();
    Head = 0;
    RootConflict = false;
    ByKey.clear();
  }

  /// Adds a clause to the database, propagating to saturation. Units go
  /// straight to the root trail (they are never deletion targets — the
  /// solver only deletes stored clauses, which are always binary-plus).
  void add(const std::vector<int> &C) {
    if (RootConflict)
      return;
    for (int L : C)
      growTo(std::abs(L));
    if (C.empty()) {
      RootConflict = true;
      return;
    }
    if (C.size() == 1) {
      if (!enqueue(C[0]) || propagate())
        RootConflict = true;
      return;
    }
    int Id = int(Clauses.size());
    Clauses.push_back({C, false});
    std::vector<int> &Stored = Clauses[Id].Lits;
    // Watch two non-false literals when they exist.
    size_t W = 0;
    for (size_t I = 0; I < Stored.size() && W < 2; ++I)
      if (val(Stored[I]) >= 0)
        std::swap(Stored[W++], Stored[I]);
    ByKey[key(C)].push_back(Id);
    Watch[idx(-Stored[0])].push_back(Id);
    Watch[idx(-Stored[1])].push_back(Id);
    if (W < 2) {
      if (!enqueue(Stored[0]) || propagate())
        RootConflict = true;
    }
  }

  /// True iff the clause is a reverse-unit-propagation consequence of the
  /// live database. Leaves the root trail unchanged.
  bool isRup(const std::vector<int> &C) {
    if (RootConflict)
      return true;
    for (int L : C)
      growTo(std::abs(L));
    size_t Mark = Trail.size();
    bool Conflict = false;
    for (int L : C) {
      int V = val(L);
      if (V > 0) { // Satisfied at the root: the clause is implied.
        Conflict = true;
        break;
      }
      if (V == 0 && !enqueue(-L)) {
        Conflict = true;
        break;
      }
    }
    if (!Conflict)
      Conflict = propagate();
    for (size_t I = Mark; I < Trail.size(); ++I)
      Assign[std::abs(Trail[I])] = 0;
    Trail.resize(Mark);
    Head = Mark;
    return Conflict;
  }

  /// Removes the stored clause matching \p C as a literal multiset.
  /// Returns false when no live clause matches (the caller skips the
  /// deletion — keeping a clause only strengthens the database).
  bool erase(const std::vector<int> &C) {
    if (C.size() < 2)
      return false;
    auto It = ByKey.find(key(C));
    if (It == ByKey.end() || It->second.empty())
      return false;
    int Id = It->second.back();
    It->second.pop_back();
    if (It->second.empty())
      ByKey.erase(It);
    Clauses[Id].Deleted = true;
    Clauses[Id].Lits.clear();
    Clauses[Id].Lits.shrink_to_fit();
    return true;
  }

private:
  struct Cl {
    std::vector<int> Lits;
    bool Deleted;
  };

  static size_t idx(int L) {
    return size_t(std::abs(L)) * 2 + (L < 0 ? 1 : 0);
  }
  static std::string key(const std::vector<int> &C) {
    std::vector<int> S = C;
    std::sort(S.begin(), S.end());
    std::string K;
    K.reserve(S.size() * 4);
    for (int L : S) {
      uint32_t X = uint32_t(L);
      K.push_back(char(X & 0xff));
      K.push_back(char((X >> 8) & 0xff));
      K.push_back(char((X >> 16) & 0xff));
      K.push_back(char((X >> 24) & 0xff));
    }
    return K;
  }

  void growTo(int Var) {
    if (int(Assign.size()) <= Var)
      Assign.resize(size_t(Var) + 1, 0);
    size_t Need = (size_t(Var) + 1) * 2;
    if (Watch.size() < Need)
      Watch.resize(Need);
  }
  int val(int L) const {
    int A = Assign[std::abs(L)];
    return L > 0 ? A : -A;
  }
  bool enqueue(int L) {
    int V = val(L);
    if (V < 0)
      return false;
    if (V == 0) {
      Assign[std::abs(L)] = L > 0 ? 1 : -1;
      Trail.push_back(L);
    }
    return true;
  }
  /// Unit propagation to fixpoint; true = conflict found.
  bool propagate() {
    while (Head < Trail.size()) {
      int P = Trail[Head++];
      // Clauses watching literal w register under idx(-w) — the literal
      // whose enqueue falsifies the watch — so P's arrival visits
      // Watch[idx(P)].
      std::vector<int> &WList = Watch[idx(P)];
      size_t Keep = 0;
      for (size_t I = 0; I < WList.size(); ++I) {
        int Id = WList[I];
        Cl &Cls = Clauses[Id];
        if (Cls.Deleted)
          continue; // lazily dropped from the watch list
        std::vector<int> &C = Cls.Lits;
        if (C[0] == -P)
          std::swap(C[0], C[1]);
        if (val(C[0]) > 0) {
          WList[Keep++] = Id;
          continue;
        }
        bool Moved = false;
        for (size_t K = 2; K < C.size(); ++K) {
          if (val(C[K]) >= 0) {
            std::swap(C[1], C[K]);
            Watch[idx(-C[1])].push_back(Id);
            Moved = true;
            break;
          }
        }
        if (Moved)
          continue;
        WList[Keep++] = Id;
        if (!enqueue(C[0])) {
          for (size_t K = I + 1; K < WList.size(); ++K)
            WList[Keep++] = WList[K];
          WList.resize(Keep);
          Head = Trail.size();
          return true;
        }
      }
      WList.resize(Keep);
    }
    return false;
  }

  std::vector<int> Assign; // indexed by variable; 0/+1/-1
  std::vector<Cl> Clauses;
  std::vector<std::vector<int>> Watch; // indexed by idx(trigger literal)
  std::vector<int> Trail;
  size_t Head = 0;
  std::unordered_map<std::string, std::vector<int>> ByKey;
};

//===----------------------------------------------------------------------===//
// Formula well-formedness gate: an independent recursive-descent parser
// for the engine's rendering of guarded formulas (logic/ConfRel.cpp str())
// plus a zero-environment evaluator. The gate establishes that every
// conjunct is grammatical and width-consistent under the declared header
// widths and guard buffer lengths; it does NOT (and cannot, engine-free)
// re-derive the proof obligations — that is replayCertificate's job.
//===----------------------------------------------------------------------===//

struct HeaderWidths {
  std::unordered_map<long, long> Left, Right;
};

/// A bitvector value under the all-zero environment: Known=false for
/// subterms whose width the text does not determine (rigid variables have
/// no width annotation in the rendering; widths unify through equalities).
struct Val {
  bool Known = true;
  std::string Bits; // Bits[i] = bit i, '0'/'1'
};

class FormulaParser {
public:
  FormulaParser(const std::string &Text, const HeaderWidths &HW,
                long BufLeft, long BufRight)
      : S(Text), HW(HW), BufL(BufLeft), BufR(BufRight) {}

  /// Parses the whole text as a pure formula; false + Err on failure.
  bool parseFormula() {
    bool B;
    if (!formula(B))
      return false;
    skipWs();
    if (P != S.size())
      return err("trailing characters after formula");
    return true;
  }

  std::string Err;

private:
  struct Node {
    bool IsFormula;
    bool B = false; // formula value under the zero environment
    Val V;          // expression value
  };

  bool err(const std::string &Why) {
    if (Err.empty())
      Err = Why + " at offset " + std::to_string(P);
    return false;
  }
  void skipWs() {
    while (P < S.size() && S[P] == ' ')
      ++P;
  }
  bool lit(const char *Tok) {
    size_t N = std::strlen(Tok);
    if (S.compare(P, N, Tok) != 0)
      return false;
    P += N;
    return true;
  }
  bool number(long &Out) {
    size_t Start = P;
    while (P < S.size() && std::isdigit(static_cast<unsigned char>(S[P])))
      ++P;
    if (P == Start)
      return false;
    Out = std::strtol(S.c_str() + Start, nullptr, 10);
    return true;
  }

  bool formula(bool &B) {
    Node N;
    if (!node(N))
      return false;
    if (!N.IsFormula)
      return err("expected a formula, found a bitvector expression");
    B = N.B;
    return true;
  }

  bool node(Node &Out) {
    skipWs();
    if (P >= S.size())
      return err("unexpected end of formula");
    if (lit("true")) {
      Out = {true, true, {}};
      return true;
    }
    if (lit("false")) {
      Out = {true, false, {}};
      return true;
    }
    if (lit("!")) {
      bool B;
      if (!formula(B))
        return false;
      Out = {true, !B, {}};
      return true;
    }
    if (lit("0b")) {
      Val V;
      while (P < S.size() && (S[P] == '0' || S[P] == '1'))
        V.Bits.push_back(S[P++]);
      Out = {false, false, V};
      return slices(Out);
    }
    if (lit("buf<")) {
      Out = {false, false, zeros(BufL)};
      return slices(Out);
    }
    if (lit("buf>")) {
      Out = {false, false, zeros(BufR)};
      return slices(Out);
    }
    if (S[P] == 'h' && P + 1 < S.size() &&
        std::isdigit(static_cast<unsigned char>(S[P + 1]))) {
      ++P;
      long Id;
      number(Id);
      bool LeftSide;
      if (lit("<"))
        LeftSide = true;
      else if (lit(">"))
        LeftSide = false;
      else
        return err("header reference missing its side mark");
      const auto &Map = LeftSide ? HW.Left : HW.Right;
      auto It = Map.find(Id);
      if (It == Map.end())
        return err("header h" + std::to_string(Id) +
                   (LeftSide ? "<" : ">") + " is not declared");
      Out = {false, false, zeros(It->second)};
      return slices(Out);
    }
    if (lit("$")) {
      size_t Start = P;
      while (P < S.size() &&
             (std::isalnum(static_cast<unsigned char>(S[P])) ||
              S[P] == '_' || S[P] == '.'))
        ++P;
      if (P == Start)
        return err("empty rigid-variable name");
      Out = {false, false, Val{false, {}}};
      return slices(Out);
    }
    if (lit("(")) {
      Node L;
      if (!node(L))
        return false;
      skipWs();
      if (lit("= ")) {
        Node R;
        if (!node(R))
          return false;
        if (L.IsFormula || R.IsFormula)
          return err("'=' applied to a formula");
        if (L.V.Known && R.V.Known &&
            L.V.Bits.size() != R.V.Bits.size())
          return err("width mismatch in equality (" +
                     std::to_string(L.V.Bits.size()) + " vs " +
                     std::to_string(R.V.Bits.size()) + ")");
        bool B;
        if (L.V.Known && R.V.Known)
          B = L.V.Bits == R.V.Bits;
        else if (L.V.Known)
          B = allZero(L.V.Bits);
        else if (R.V.Known)
          B = allZero(R.V.Bits);
        else
          B = true;
        if (!close())
          return false;
        Out = {true, B, {}};
        return true;
      }
      char Op = 0;
      if (lit("& "))
        Op = '&';
      else if (lit("| "))
        Op = '|';
      else if (lit("-> "))
        Op = '>';
      if (Op != 0) {
        Node R;
        if (!node(R))
          return false;
        if (!L.IsFormula || !R.IsFormula)
          return err("boolean connective applied to a bitvector "
                     "expression");
        bool B = Op == '&'   ? (L.B && R.B)
                 : Op == '|' ? (L.B || R.B)
                             : (!L.B || R.B);
        if (!close())
          return false;
        Out = {true, B, {}};
        return true;
      }
      if (lit("++ ")) {
        Node R;
        if (!node(R))
          return false;
        if (L.IsFormula || R.IsFormula)
          return err("'++' applied to a formula");
        Val V;
        V.Known = L.V.Known && R.V.Known;
        if (V.Known)
          V.Bits = L.V.Bits + R.V.Bits;
        if (!close())
          return false;
        Out = {false, false, V};
        return slices(Out);
      }
      return err("expected '=', '&', '|', '->' or '++'");
    }
    return err("unexpected character '" + std::string(1, S[P]) + "'");
  }

  bool close() {
    skipWs();
    if (!lit(")"))
      return err("expected ')'");
    return true;
  }

  /// Clamped inclusive slice suffixes, chainable: expr[lo:hi][lo:hi]...
  bool slices(Node &N) {
    while (P < S.size() && S[P] == '[') {
      ++P;
      long Lo, Hi;
      if (!number(Lo) || !lit(":") || !number(Hi) || !lit("]"))
        return err("malformed slice suffix");
      if (N.V.Known) {
        long W = long(N.V.Bits.size());
        if (W == 0) {
          N.V.Bits.clear();
        } else {
          long CLo = std::min(Lo, W - 1), CHi = std::min(Hi, W - 1);
          N.V.Bits = CLo > CHi
                         ? std::string()
                         : N.V.Bits.substr(size_t(CLo),
                                           size_t(CHi - CLo + 1));
        }
      }
    }
    return true;
  }

  static Val zeros(long W) { return Val{true, std::string(size_t(W), '0')}; }
  static bool allZero(const std::string &B) {
    return B.find('1') == std::string::npos;
  }

  const std::string &S;
  size_t P = 0;
  const HeaderWidths &HW;
  long BufL, BufR;
};

/// Splits a guarded-formula rendering "[q,n]< & [q,n]> => phi" into its
/// guard buffer lengths and the pure body.
bool splitGuarded(const std::string &Text, long &NL, long &NR,
                  std::string &Body, std::string &Err) {
  if (Text.empty() || Text[0] != '[') {
    Err = "guarded formula does not start with '['";
    return false;
  }
  size_t Mid = Text.find("]< & [");
  if (Mid == std::string::npos) {
    Err = "guard separator \"]< & [\" not found";
    return false;
  }
  size_t End = Text.find("]> => ", Mid);
  if (End == std::string::npos) {
    Err = "guard terminator \"]> => \" not found";
    return false;
  }
  auto GuardN = [&Err](const std::string &Inner, long &N) {
    size_t Comma = Inner.rfind(',');
    if (Comma == std::string::npos) {
      Err = "guard template missing its buffer length";
      return false;
    }
    char *EndP = nullptr;
    N = std::strtol(Inner.c_str() + Comma + 1, &EndP, 10);
    if (EndP == Inner.c_str() + Comma + 1 || *EndP != '\0') {
      Err = "guard buffer length is not a number";
      return false;
    }
    return true;
  };
  if (!GuardN(Text.substr(1, Mid - 1), NL))
    return false;
  if (!GuardN(Text.substr(Mid + 6, End - Mid - 6), NR))
    return false;
  Body = Text.substr(End + 6);
  return true;
}

//===----------------------------------------------------------------------===//
// Stream replay: the RUP checker plus the goal-scope discipline that makes
// per-goal slices sound (see CertVerify.h and docs/CERTIFICATES.md).
//===----------------------------------------------------------------------===//

struct StreamCheck {
  RupDb Db;
  bool GoalOpen = false;
  long OpenAct = 0; // DIMACS variable of the open goal; 0 = one-shot
  uint64_t OpenId = 0;
  uint64_t LastId = 0; // goal ids strictly increase per stream
  long MaxVarSeen = 0; // since the last restart, for activation freshness
  std::unordered_set<long> ActVars; // activation variables since restart

  void noteVars(const std::vector<int> &Lits) {
    for (int L : Lits)
      MaxVarSeen = std::max(MaxVarSeen, long(std::abs(L)));
  }
  void restart() {
    Db.reset();
    GoalOpen = false;
    OpenAct = 0;
    MaxVarSeen = 0;
    ActVars.clear();
    // LastId survives: goal ids are per-stream, not per-incarnation.
  }
};

/// Reads "<int>... 0" from \p In into \p Lits; false on malformed input
/// or a missing terminator.
bool readClause(std::istringstream &In, std::vector<int> &Lits) {
  Lits.clear();
  long L;
  while (In >> L) {
    if (L == 0) {
      std::string Rest;
      return !(In >> Rest); // nothing after the terminator
    }
    if (L > 0x3fffffff || L < -0x3fffffff)
      return false;
    Lits.push_back(int(L));
  }
  return false; // terminator never seen
}

} // namespace

VerifyResult cert::verifyCertificate(const std::string &Payload,
                                     const VerifyOptions &Options) {
  VerifyResult R;

  std::string Text;
  if (support::looksCompressed(Payload)) {
    std::string Err;
    if (!support::decompress(Payload, Text, &Err)) {
      R.Diagnostic = "container: " + Err;
      return R;
    }
  } else {
    Text = Payload;
  }

  // Split into lines; Line N in diagnostics is 1-based over the raw text.
  std::vector<std::string> Lines;
  {
    size_t Start = 0;
    while (Start <= Text.size()) {
      size_t Nl = Text.find('\n', Start);
      if (Nl == std::string::npos) {
        if (Start < Text.size())
          Lines.push_back(Text.substr(Start));
        break;
      }
      Lines.push_back(Text.substr(Start, Nl - Start));
      Start = Nl + 1;
    }
  }

  size_t I = 0; // current line index
  auto fail = [&](const std::string &Why) {
    R.Ok = false;
    R.Diagnostic = "line " + std::to_string(I + 1) + ": " + Why;
    return R;
  };
  auto haveLine = [&]() { return I < Lines.size(); };
  auto takePrefix = [&](const char *Prefix, std::string &Rest) {
    if (!haveLine())
      return false;
    size_t N = std::strlen(Prefix);
    if (Lines[I].compare(0, N, Prefix) != 0)
      return false;
    Rest = Lines[I].substr(N);
    ++I;
    return true;
  };

  // --- Header ---
  if (!haveLine() || Lines[I] != CertMagic)
    return fail(std::string("expected \"") + CertMagic +
                "\" (not a certificate, or a corrupted container)");
  ++I;

  std::string Rest;
  if (!takePrefix("fingerprint ", Rest))
    return fail("expected the fingerprint line");
  if (Rest != "-") {
    if (Rest.size() != 32 ||
        Rest.find_first_not_of("0123456789abcdef") != std::string::npos)
      return fail("fingerprint is not 32 lowercase hex digits");
  }
  R.FingerprintHex = Rest;
  if (!Options.ExpectFingerprintHex.empty() &&
      Rest != Options.ExpectFingerprintHex)
    return fail("fingerprint mismatch: certificate carries \"" + Rest +
                "\", expected \"" + Options.ExpectFingerprintHex + "\"");

  if (!takePrefix("options ", Rest))
    return fail("expected the options line");
  {
    std::istringstream In(Rest);
    std::string LeapsTok, ReachTok, Extra;
    if (!(In >> LeapsTok >> ReachTok) || (In >> Extra) ||
        LeapsTok.rfind("leaps=", 0) != 0 || ReachTok.rfind("reach=", 0) != 0)
      return fail("malformed options line");
  }

  // --- Header widths ---
  HeaderWidths HW;
  if (!takePrefix("headers ", Rest))
    return fail("expected the headers line");
  long NHl = 0, NHr = 0;
  {
    std::istringstream In(Rest);
    std::string Extra;
    if (!(In >> NHl >> NHr) || (In >> Extra) || NHl < 0 || NHr < 0)
      return fail("malformed headers line");
  }
  for (long K = 0; K < NHl + NHr; ++K) {
    bool LeftSide = K < NHl;
    if (!takePrefix(LeftSide ? "hl " : "hr ", Rest))
      return fail(LeftSide ? "expected a left header-width line (hl)"
                           : "expected a right header-width line (hr)");
    std::istringstream In(Rest);
    long Id, W;
    std::string Extra;
    if (!(In >> Id >> W) || (In >> Extra) || Id < 0 || W < 0)
      return fail("malformed header-width line");
    auto &Map = LeftSide ? HW.Left : HW.Right;
    if (!Map.emplace(Id, W).second)
      return fail("duplicate header-width declaration");
  }

  // --- Spec (phi's guard and premise) ---
  if (!takePrefix("spec ", Rest))
    return fail("expected the spec line");
  {
    std::string SpecText;
    if (!unescapeLine(Rest, SpecText))
      return fail("spec line has a dangling escape");
    long NL, NR;
    std::string Body, Err;
    if (!splitGuarded(SpecText, NL, NR, Body, Err))
      return fail("spec: " + Err);
    FormulaParser FP(Body, HW, NL, NR);
    if (!FP.parseFormula())
      return fail("spec premise: " + FP.Err);
  }

  // --- Relation ---
  if (!takePrefix("relation ", Rest))
    return fail("expected the relation line");
  long NRel = 0;
  {
    std::istringstream In(Rest);
    std::string Extra;
    if (!(In >> NRel) || (In >> Extra) || NRel < 0)
      return fail("malformed relation count");
  }
  uint64_t RelHash = fnv1a64("", 14695981039346656037ull);
  for (long K = 0; K < NRel; ++K) {
    if (!takePrefix("c ", Rest))
      return fail("expected conjunct " + std::to_string(K + 1) + " of " +
                  std::to_string(NRel) +
                  " (relation count disagrees with the conjunct lines)");
    RelHash = fnv1a64(Rest + "\n", RelHash);
    std::string Conjunct;
    if (!unescapeLine(Rest, Conjunct))
      return fail("conjunct line has a dangling escape");
    long NL, NR;
    std::string Body, Err;
    if (!splitGuarded(Conjunct, NL, NR, Body, Err))
      return fail("conjunct " + std::to_string(K + 1) + ": " + Err);
    FormulaParser FP(Body, HW, NL, NR);
    if (!FP.parseFormula())
      return fail("conjunct " + std::to_string(K + 1) + ": " + FP.Err);
    ++R.Stats.RelationConjuncts;
  }
  if (!takePrefix("relhash ", Rest))
    return fail("expected the relhash line");
  if (Rest != hex64(RelHash))
    return fail("relation hash mismatch: conjuncts hash to " +
                hex64(RelHash) + ", certificate claims " + Rest);

  // --- Proof streams ---
  if (!takePrefix("streams ", Rest))
    return fail("expected the streams line");
  long NStreams = 0;
  {
    std::istringstream In(Rest);
    std::string Extra;
    if (!(In >> NStreams) || (In >> Extra) || NStreams < 0)
      return fail("malformed stream count");
  }
  for (long SIdx = 0; SIdx < NStreams; ++SIdx) {
    if (!takePrefix("stream ", Rest))
      return fail("expected stream " + std::to_string(SIdx) + " of " +
                  std::to_string(NStreams));
    long Declared = -1, NEvents = -1;
    {
      std::istringstream In(Rest);
      std::string Extra;
      if (!(In >> Declared >> NEvents) || (In >> Extra) || NEvents < 0)
        return fail("malformed stream header");
      if (Declared != SIdx)
        return fail("stream index " + std::to_string(Declared) +
                    " out of order (expected " + std::to_string(SIdx) + ")");
    }
    StreamCheck SC;
    std::vector<int> Lits;
    for (long E = 0; E < NEvents; ++E) {
      if (!haveLine())
        return fail("stream ends after " + std::to_string(E) + " of " +
                    std::to_string(NEvents) + " events (truncated?)");
      const std::string &Line = Lines[I];
      if (Line.size() < 1)
        return fail("empty event line");
      char Kind = Line[0];
      std::istringstream In(Line.substr(1));
      switch (Kind) {
      case 'g': {
        long Id = -1, Act = -1;
        std::string Extra;
        if (!(In >> Id >> Act) || (In >> Extra) || Id < 0 || Act < 0)
          return fail("malformed goal-begin event");
        if (SC.GoalOpen)
          return fail("goal " + std::to_string(Id) + " opened while goal " +
                      std::to_string(SC.OpenId) + " is still open");
        if (uint64_t(Id) <= SC.LastId)
          return fail("goal id " + std::to_string(Id) +
                      " does not increase (last was " +
                      std::to_string(SC.LastId) + ")");
        if (Act > 0) {
          if (Act <= SC.MaxVarSeen)
            return fail("activation variable " + std::to_string(Act) +
                        " of goal " + std::to_string(Id) +
                        " is not fresh (a variable up to " +
                        std::to_string(SC.MaxVarSeen) +
                        " was already mentioned)");
          SC.ActVars.insert(Act);
          SC.MaxVarSeen = Act;
        }
        SC.GoalOpen = true;
        SC.OpenAct = Act;
        SC.OpenId = uint64_t(Id);
        SC.LastId = uint64_t(Id);
        ++R.Stats.Goals;
        break;
      }
      case 'i': {
        if (!readClause(In, Lits))
          return fail("malformed input clause");
        SC.noteVars(Lits);
        // Scope discipline. Globally: activation variables are only ever
        // assumed, never asserted, so a positive activation literal in
        // any input is malformed. Inside the scope of an open goal g, an
        // input is either a goal clause (carries the guard -act_g) or a
        // lazily-blasted premise (mentions no activation variable at
        // all) — a clause that mentions act_g without guarding on it, or
        // drags another goal's activation variable in mid-scope, fits
        // neither producer shape and is rejected. Retirement units
        // {-act_h} of *ended* goals are admitted only outside any scope,
        // where the model-extension argument (docs/CERTIFICATES.md)
        // makes them harmless.
        bool HasGuard = false, MentionsAct = false;
        for (int L : Lits) {
          int V = L > 0 ? L : -L;
          if (L > 0 && SC.ActVars.count(V))
            return fail("input clause contains a positive activation "
                        "literal " +
                        std::to_string(L) +
                        " (activation variables must only be assumed, "
                        "never asserted)");
          if (SC.ActVars.count(V)) {
            MentionsAct = true;
            if (SC.GoalOpen && SC.OpenAct > 0 && L == -int(SC.OpenAct))
              HasGuard = true;
          }
        }
        if (SC.GoalOpen && SC.OpenAct > 0 && MentionsAct && !HasGuard)
          return fail("input clause inside the scope of goal " +
                      std::to_string(SC.OpenId) +
                      " mentions an activation variable but is missing "
                      "the guard literal " +
                      std::to_string(-SC.OpenAct));
        SC.Db.add(Lits);
        ++R.Stats.Inputs;
        break;
      }
      case 'l': {
        if (!readClause(In, Lits))
          return fail("malformed lemma clause");
        SC.noteVars(Lits);
        ++R.Stats.Lemmas;
        if (Lits.empty()) {
          if (!SC.Db.RootConflict && !SC.Db.isRup(Lits))
            return fail("empty lemma recorded, but the database is not "
                        "conflicting");
          SC.Db.add(Lits);
          break;
        }
        if (!SC.Db.isRup(Lits))
          return fail("lemma is not a reverse-unit-propagation "
                      "consequence of the live clause database");
        SC.Db.add(Lits);
        break;
      }
      case 'd': {
        if (!readClause(In, Lits))
          return fail("malformed deletion");
        SC.noteVars(Lits);
        ++R.Stats.Deletions;
        if (!SC.Db.erase(Lits))
          ++R.Stats.DeletionsSkipped; // sound: the clause stays
        break;
      }
      case 'u': {
        long Id = -1;
        if (!(In >> Id) || Id < 0)
          return fail("malformed goal-unsat event");
        if (!readClause(In, Lits))
          return fail("malformed goal-unsat core");
        if (!SC.GoalOpen || SC.OpenId != uint64_t(Id))
          return fail("goal " + std::to_string(Id) +
                      " closed unsat, but it is not the open goal");
        if (SC.OpenAct == 0 && !Lits.empty())
          return fail("one-shot goal " + std::to_string(Id) +
                      " closed with a non-empty core");
        for (int L : Lits)
          if (L != -int(SC.OpenAct))
            return fail("unsat core of goal " + std::to_string(Id) +
                        " contains " + std::to_string(L) +
                        ", expected only the negated activation literal " +
                        std::to_string(-SC.OpenAct));
        if (Lits.empty()) {
          if (!SC.Db.RootConflict && !SC.Db.isRup(Lits))
            return fail("goal " + std::to_string(Id) +
                        " claims root unsatisfiability, but the database "
                        "is not conflicting");
        } else if (!SC.Db.isRup(Lits)) {
          return fail("unsat core of goal " + std::to_string(Id) +
                      " is not a reverse-unit-propagation consequence of "
                      "the live clause database");
        }
        SC.GoalOpen = false;
        SC.OpenAct = 0;
        ++R.Stats.UnsatGoals;
        break;
      }
      case 'e': {
        long Id = -1;
        std::string Extra;
        if (!(In >> Id) || (In >> Extra) || Id < 0)
          return fail("malformed goal-sat event");
        if (!SC.GoalOpen || SC.OpenId != uint64_t(Id))
          return fail("goal " + std::to_string(Id) +
                      " closed sat, but it is not the open goal");
        SC.GoalOpen = false;
        SC.OpenAct = 0;
        break;
      }
      case 'r': {
        std::string Extra;
        if (In >> Extra)
          return fail("malformed restart event");
        if (SC.GoalOpen)
          return fail("session restart while goal " +
                      std::to_string(SC.OpenId) + " is open");
        SC.restart();
        break;
      }
      default:
        return fail(std::string("unknown event kind '") + Kind + "'");
      }
      ++I;
    }
    if (SC.GoalOpen)
      return fail("stream " + std::to_string(SIdx) + " ends with goal " +
                  std::to_string(SC.OpenId) + " still open");
    if (!haveLine() || Lines[I] != "endstream")
      return fail("expected \"endstream\" after " +
                  std::to_string(NEvents) + " events");
    ++I;
    ++R.Stats.Streams;
  }

  // --- Trailer ---
  if (!takePrefix("trailer ", Rest))
    return fail("expected the trailer line");
  {
    std::istringstream In(Rest);
    long TN = -1, TM = -1;
    std::string THash, TFp, Extra;
    if (!(In >> TN >> TM >> THash >> TFp) || (In >> Extra))
      return fail("malformed trailer");
    if (TN != NRel || TM != NStreams)
      return fail("trailer counts (" + std::to_string(TN) + " conjuncts, " +
                  std::to_string(TM) + " streams) disagree with the body (" +
                  std::to_string(NRel) + ", " + std::to_string(NStreams) +
                  ")");
    if (THash != hex64(RelHash))
      return fail("trailer relation hash disagrees with the conjuncts");
    if (TFp != R.FingerprintHex)
      return fail("trailer fingerprint disagrees with the header");
  }
  if (!haveLine() || Lines[I] != CertEndMark)
    return fail(std::string("expected \"") + CertEndMark +
                "\" (certificate truncated?)");
  ++I;
  for (; I < Lines.size(); ++I)
    if (!Lines[I].empty())
      return fail("trailing content after the end mark");

  R.Ok = true;
  return R;
}
