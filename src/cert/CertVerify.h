//===- CertVerify.h - Engine-free certificate verification ------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The independent verifier behind the `leapfrog-certcheck` tool — the
/// analogue of the paper's "check the certificate in the Coq kernel"
/// step (§6.4). verifyCertificate() replays a serialized certificate
/// (core/CertificateIo.h format, see cert/CertFormat.h) with NO linkage
/// against the solver, the checker, the logic layer, or the parallel
/// engine: its trusted base is this file, CertFormat, the LZSS
/// decompressor, and the C++ standard library. What it re-derives:
///
///  * Container integrity — magic line, section counts, the trailer
///    repeating counts/relhash/fingerprint, and the LFCERT-END mark
///    (truncation and splicing surface as structured diagnostics).
///  * Relation well-formedness — every conjunct line re-parses under the
///    engine's formula grammar (an independent recursive-descent parser)
///    and passes a width/zero-evaluation gate against the declared
///    header widths and guard buffer lengths; the relation hash must
///    match the recorded one.
///  * Proof stream validity — every stream replays through an
///    independent deletion-aware RUP checker: inputs extend the clause
///    database, every lemma must be RUP when recorded, deletions remove
///    the matching stored clause (unknown deletions are skipped — that
///    only strengthens the database), restarts reset it.
///  * Goal scope discipline — the structural rules that make per-goal
///    DRUP slices sound under clause deletion and goal retirement
///    (docs/CERTIFICATES.md): activation variables are fresh at their
///    GoalBegin (greater than every variable mentioned since the last
///    restart), at most one goal is open at a time, goal ids strictly
///    increase, no input anywhere contains a positive activation
///    literal, every input inside a goal's scope carries that goal's
///    negated activation literal, and an UNSAT goal's core consists only
///    of the open goal's negated activation literal (empty cores require
///    the database to be conflicting at the root; one-shot goals —
///    activation 0 — only close with empty cores).
///
/// What it deliberately does NOT check: that the CNF inside the streams
/// is a faithful bit-blasting of the relation's entailment obligations.
/// That binding — lowering, bit-blasting, WP re-derivation — is the
/// replayer's job (core::replayCertificate) and remains in the engine's
/// trusted base, exactly as the paper's lowering plugin does.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_CERT_CERTVERIFY_H
#define LEAPFROG_CERT_CERTVERIFY_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace leapfrog {
namespace cert {

struct VerifyOptions {
  /// When nonempty, the certificate's fingerprint line must equal this
  /// (lowercase hex) — how a store consumer pins a certificate to the
  /// request key it was fetched under.
  std::string ExpectFingerprintHex;
};

struct VerifyStats {
  size_t RelationConjuncts = 0;
  size_t Streams = 0;
  size_t Goals = 0;
  size_t UnsatGoals = 0;
  size_t Inputs = 0;
  size_t Lemmas = 0;
  size_t Deletions = 0;
  size_t DeletionsSkipped = 0;
};

struct VerifyResult {
  bool Ok = false;
  /// Located diagnostic ("line 42: lemma is not RUP: ...") when !Ok.
  std::string Diagnostic;
  /// The certificate's own fingerprint line ("-" when it carries none).
  std::string FingerprintHex;
  VerifyStats Stats;
};

/// Verifies \p Payload, which may be raw LFCERT text or an LFCZ1
/// compression container holding it. Never throws; every failure is a
/// diagnostic. See the file comment for exactly what is established.
VerifyResult verifyCertificate(const std::string &Payload,
                               const VerifyOptions &Options = VerifyOptions());

} // namespace cert
} // namespace leapfrog

#endif // LEAPFROG_CERT_CERTVERIFY_H
