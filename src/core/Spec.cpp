//===- Spec.cpp - Property specifications for the checker -----------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "core/Spec.h"

using namespace leapfrog;
using namespace leapfrog::core;
using namespace leapfrog::logic;

std::vector<GuardedFormula>
core::buildInitialConjuncts(const InitialSpec &Spec,
                            const std::vector<TemplatePair> &Pairs) {
  std::vector<GuardedFormula> I;

  if (Spec.Mode != AcceptanceMode::Custom) {
    PureRef QL = Spec.Mode == AcceptanceMode::Qualified && Spec.LeftQualifier
                     ? Spec.LeftQualifier
                     : Pure::mkTrue();
    PureRef QR = Spec.Mode == AcceptanceMode::Qualified && Spec.RightQualifier
                     ? Spec.RightQualifier
                     : Pure::mkTrue();
    for (TemplatePair TP : Pairs) {
      bool LA = TP.L.isAccept();
      bool RA = TP.R.isAccept();
      // Filtered acceptance: a side accepts iff its terminal state is
      // accept *and* its qualifier holds of the final store. Related
      // pairs must filtered-accept equally.
      if (LA && RA) {
        // qualL ⟺ qualR. With True qualifiers this folds to True and is
        // dropped by the frontier (Standard mode adds nothing here).
        PureRef Iff = Pure::mkAnd(Pure::mkImplies(QL, QR),
                                  Pure::mkImplies(QR, QL));
        if (Iff->kind() != Pure::Kind::True)
          I.push_back(GuardedFormula{TP, Iff});
      } else if (LA && !RA) {
        // Left must not (filtered-)accept: ¬qualL. Standard: ⊥.
        I.push_back(GuardedFormula{TP, Pure::mkNot(QL)});
      } else if (!LA && RA) {
        I.push_back(GuardedFormula{TP, Pure::mkNot(QR)});
      }
    }
  }

  for (const GuardedFormula &G : Spec.ExtraInitial)
    I.push_back(G);
  return I;
}
