//===- Checker.h - Symbolic equivalence checking (Algorithm 1) --*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the library: the symbolic equivalence checker
/// of paper §4–§5 (Algorithm 1), which computes the weakest symbolic
/// bisimulation (with leaps) as a set of template-guarded conjuncts R.
///
/// The worklist loop mirrors the paper's pre_bisimulation inductive
/// relation (Figure 4): each popped conjunct is either *skipped* (already
/// entailed by ⋀R — an SMT query) or *extended* (added to R, its weakest
/// preconditions pushed). On an empty worklist, the final *done* check
/// φ ⊨ ⋀R decides the verdict. Every decision is recorded in a trace, and
/// on success the checker emits an EquivalenceCertificate that can be
/// re-validated independently of the search (Certificate.h).
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_CORE_CHECKER_H
#define LEAPFROG_CORE_CHECKER_H

#include "core/Certificate.h"
#include "core/Reachability.h"
#include "core/Spec.h"
#include "logic/ConfRel.h"
#include "smt/Solver.h"

#include <string>
#include <vector>

namespace leapfrog {
namespace core {

using logic::GuardedFormula;
using logic::PureRef;
using logic::TemplatePair;

/// Tuning knobs, including the §5 optimizations as ablation switches.
struct CheckOptions {
  /// Multi-step weakest preconditions (§5.2). Off = bit-by-bit WP.
  bool UseLeaps = true;
  /// Template-pair reachability pruning (§5.1). Off = full product.
  bool UseReachability = true;
  /// Safety valve on worklist iterations (the paper's Coq proof search has
  /// no such cap; ours reports Verdict::ResourceLimit instead of hanging).
  size_t MaxIterations = 1u << 20;
  /// Wall-clock budget in microseconds; 0 = unlimited. Like MaxIterations,
  /// exceeding it yields Verdict::ResourceLimit — the analogue of the
  /// paper's out-of-memory outcome on the Service Provider study.
  uint64_t MaxWallMicros = 0;
  /// Solver backend; nullptr = smt::defaultSolver().
  smt::SmtSolver *Solver = nullptr;
  /// Record one TraceStep per loop iteration (costs memory on big runs).
  bool RecordTrace = false;
};

/// Builds the standard language-equivalence spec for two start states.
InitialSpec languageEquivalenceSpec(const p4a::Automaton &Left,
                                    p4a::StateRef QL,
                                    const p4a::Automaton &Right,
                                    p4a::StateRef QR);

enum class Verdict {
  Equivalent,    ///< φ entails the weakest symbolic bisimulation.
  NotEquivalent, ///< The final (or an initial) check refuted φ.
  ResourceLimit, ///< MaxIterations hit before the frontier drained.
};

/// One step of the proof-search trace (paper Figure 4's constructors).
struct TraceStep {
  enum class Kind { Skip, Extend, Done } K;
  GuardedFormula Psi; ///< The conjunct considered (empty formula on Done).
  size_t WpCount = 0; ///< Extend: how many preconditions were pushed.
};

/// Counters the benchmark harness reports (Table 2 columns and §7.3
/// discussion material).
struct CheckStats {
  size_t Iterations = 0;
  size_t Extends = 0;
  size_t Skips = 0;
  size_t SmtQueries = 0;
  size_t ReachPairs = 0;
  size_t TemplatesLeft = 0;
  size_t TemplatesRight = 0;
  size_t FinalConjuncts = 0;
  size_t PeakFrontier = 0;
  size_t FormulaNodes = 0; ///< Σ sizes of conjuncts in final R.
  uint64_t WallMicros = 0;
  uint64_t SolverMicros = 0;
};

struct CheckResult {
  Verdict V = Verdict::NotEquivalent;
  CheckStats Stats;
  /// Valid when V == Equivalent; re-check with replayCertificate().
  EquivalenceCertificate Certificate;
  /// On NotEquivalent: which conjunct refuted φ, for diagnostics.
  std::string FailureReason;
  std::vector<TraceStep> Trace; ///< Populated iff RecordTrace.

  bool equivalent() const { return V == Verdict::Equivalent; }
};

/// Runs Algorithm 1 for the property \p Spec over \p Left / \p Right.
/// The automata must be well-typed (⊢A); asserts otherwise.
CheckResult checkWithSpec(const p4a::Automaton &Left,
                          const p4a::Automaton &Right,
                          const InitialSpec &Spec,
                          const CheckOptions &Options = CheckOptions());

/// Language equivalence of two start states "regardless of initial store":
/// L(⟨QL, s1, ε⟩) = L(⟨QR, s2, ε⟩) for all s1, s2 (paper §4).
CheckResult checkLanguageEquivalence(const p4a::Automaton &Left,
                                     p4a::StateRef QL,
                                     const p4a::Automaton &Right,
                                     p4a::StateRef QR,
                                     const CheckOptions &Options =
                                         CheckOptions());

/// Convenience overload resolving states by name; asserts they exist.
CheckResult checkLanguageEquivalence(const p4a::Automaton &Left,
                                     const std::string &QL,
                                     const p4a::Automaton &Right,
                                     const std::string &QR,
                                     const CheckOptions &Options =
                                         CheckOptions());

} // namespace core
} // namespace leapfrog

#endif // LEAPFROG_CORE_CHECKER_H
