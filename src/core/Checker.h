//===- Checker.h - Symbolic equivalence checking (Algorithm 1) --*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point of the library: the symbolic equivalence checker
/// of paper §4–§5 (Algorithm 1), which computes the weakest symbolic
/// bisimulation (with leaps) as a set of template-guarded conjuncts R.
///
/// The worklist loop mirrors the paper's pre_bisimulation inductive
/// relation (Figure 4): each popped conjunct is either *skipped* (already
/// entailed by ⋀R — an SMT query) or *extended* (added to R, its weakest
/// preconditions pushed). On an empty worklist, the final *done* check
/// φ ⊨ ⋀R decides the verdict. Every decision is recorded in a trace, and
/// on success the checker emits an EquivalenceCertificate that can be
/// re-validated independently of the search (Certificate.h).
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_CORE_CHECKER_H
#define LEAPFROG_CORE_CHECKER_H

#include "core/Certificate.h"
#include "core/Reachability.h"
#include "core/Spec.h"
#include "logic/ConfRel.h"
#include "smt/Solver.h"

#include <memory>
#include <string>
#include <vector>

namespace leapfrog {
namespace core {

using logic::GuardedFormula;
using logic::PureRef;
using logic::TemplatePair;

/// Tuning knobs, including the §5 optimizations as ablation switches.
struct CheckOptions {
  /// Multi-step weakest preconditions (§5.2). Off = bit-by-bit WP.
  bool UseLeaps = true;
  /// Template-pair reachability pruning (§5.1). Off = full product.
  bool UseReachability = true;
  /// Safety valve on worklist iterations (the paper's Coq proof search has
  /// no such cap; ours reports Verdict::ResourceLimit instead of hanging).
  size_t MaxIterations = 1u << 20;
  /// Wall-clock budget in microseconds; 0 = unlimited. Like MaxIterations,
  /// exceeding it yields Verdict::ResourceLimit — the analogue of the
  /// paper's out-of-memory outcome on the Service Provider study.
  uint64_t MaxWallMicros = 0;
  /// Solver backend; nullptr = smt::defaultSolver() (unless Backend,
  /// below, names one to construct instead).
  smt::SmtSolver *Solver = nullptr;
  /// Backend *specification*, resolved through smt::createSolverBackend()
  /// when Solver is null: "bitblast" (the in-repo default), or
  /// "smtlib:<cmd>" / "crosscheck[:<cmd>]" for an external SMT-LIB2
  /// process / a divergence-hard-failing A/B of both (smt/SmtLibSolver.h).
  /// The constructed backend is owned by the checker invocation and torn
  /// down (external process included) when it returns; an *unparseable*
  /// spec is rejected — checkWithSpec returns Verdict::BadRequest with
  /// the resolver's diagnostic in FailureReason, same as
  /// core::Engine::create failing — while a parseable spec whose binary
  /// is missing degrades per query inside SmtLibSolver: the Backend knob
  /// can change performance and cross-checking, never verdicts. Ignored
  /// when Solver is set: an explicit instance is already a resolved
  /// backend. Works with every engine, including Jobs > 1 (workers come
  /// from SmtSolver::spawnWorker on the resolved backend — for external
  /// backends, one solver process per worker). Long-lived callers should
  /// resolve once through core::Engine (core/Engine.h) instead of paying
  /// backend construction per call.
  std::string Backend;
  /// Discharge the worklist entailments ⋀R ⊨ ψ through incremental solver
  /// sessions (one per template pair): each conjunct of R is lowered and
  /// bit-blasted once per run, and queries reuse the session's learned
  /// clauses. Off = re-lower and re-blast the full premise conjunction on
  /// every query (the pre-incremental behavior, kept as an ablation and
  /// as the differential-testing baseline). Both paths answer every
  /// entailment identically; certifying backends stream per-goal DRUP
  /// slices from their sessions (smt/ProofLog.h), so certification and
  /// incrementality coexist — certified runs report real session stats.
  bool UseIncremental = true;
  /// Capture a machine-checkable proof artifact for this check: the
  /// resolved backend records per-goal DRUP slice streams into
  /// CheckResult::Proof, which core/CertificateIo.h serializes together
  /// with the relation into a certificate that the standalone
  /// leapfrog-certcheck verifier replays with no engine linkage. Two
  /// backend interactions: a "smtlib:<cmd>" Backend spec is transparently
  /// rewritten to "crosscheck:<cmd>" (external solvers expose no usable
  /// proofs, so the cross-checking reference leg records them instead),
  /// and an explicit Solver instance that cannot capture proofs
  /// (supportsProofCapture() false) makes the check fail with
  /// Verdict::BadRequest rather than return an uncertified verdict.
  /// Capture is passive: verdicts, traces and decision streams are
  /// bit-identical to an uncertified run.
  bool Certify = false;
  /// Memory bounds for each incremental solver session (0 = unlimited).
  /// Sessions already bound themselves via clause-DB reduction and
  /// retired-goal deletion; these limits add a hard backstop — a session
  /// over either bound is rebuilt from its premises, which changes
  /// memory, never answers. Ignored when UseIncremental is off or the
  /// backend falls back to monolithic queries. With Jobs > 1 the limits
  /// apply to every worker's sessions individually.
  smt::SessionLimits Limits;
  /// Worker threads for the parallel frontier engine (parallel/): with
  /// Jobs > 1, each frontier generation's entailment checks — mutually
  /// independent once the premise set ⋀R is frozen — run concurrently on
  /// Jobs workers, each owning an independent backend
  /// (SmtSolver::spawnWorker) and one incremental session per template
  /// pair; a sequential merge then replays the generation in frontier
  /// order, which keeps every deterministic output (verdict, trace,
  /// relation, certificate, all stats except SmtQueries and times)
  /// bit-identical to Jobs == 1 for any job count or schedule. Jobs <= 1
  /// is the classic single-threaded loop below. Falls back to the
  /// sequential loop when the backend cannot spawn workers (custom
  /// SmtSolver subclasses without spawnWorker). The parallel engine
  /// always solves through per-worker sessions; UseIncremental selects
  /// the lowering path of the sequential engine only.
  size_t Jobs = 1;
  /// Entailment-query batching: pop up to GoalBatch adjacent frontier
  /// entries of one template pair and decide them against the same
  /// frozen premise set in shared solver round-trips
  /// (IncrementalSession::checkSatBatch) — per-goal answers are
  /// recovered from the round's model or failed-assumption core, so
  /// verdict, decision stream and certificate stay bit-identical to
  /// GoalBatch == 1; only the physical round-trip count
  /// (SolverStats::RoundTrips) drops. 1 (the default) is the classic
  /// one-query-per-goal loop. Requires UseIncremental; ignored
  /// otherwise. Batching degrades to per-goal solving under proof
  /// capture (Certify), which needs one proof slice per goal.
  size_t GoalBatch = 1;
  /// Pipelined epochs (Jobs > 1 only): start the next generation's
  /// parallel decide phase while the current generation's sequential
  /// merge drains, instead of idling every worker behind the merge
  /// barrier. The merge re-derives the exact sequential Skip/Extend
  /// stream (speculative entries whose same-pair premises grew since
  /// their freeze point are re-queried — the same freeze protocol as the
  /// barrier engine), so all deterministic outputs stay bit-identical to
  /// Jobs == 1. Certification forces barrier mode: per-goal proof
  /// streams are adopted in worker order at epoch boundaries, and
  /// overlapped epochs would interleave them.
  bool Pipeline = true;
  /// Tasks per parallel epoch (0 = auto: max(32, Jobs * 8)). Exposed so
  /// the scheduler-adversarial tests can perturb epoch boundaries —
  /// every chunking must produce bit-identical results.
  size_t Chunk = 0;
  /// Record one TraceStep per loop iteration (costs memory on big runs).
  bool RecordTrace = false;
};

/// Builds the standard language-equivalence spec for two start states.
InitialSpec languageEquivalenceSpec(const p4a::Automaton &Left,
                                    p4a::StateRef QL,
                                    const p4a::Automaton &Right,
                                    p4a::StateRef QR);

enum class Verdict {
  Equivalent,    ///< φ entails the weakest symbolic bisimulation.
  NotEquivalent, ///< The final (or an initial) check refuted φ.
  ResourceLimit, ///< MaxIterations hit before the frontier drained.
  BadRequest,    ///< The request never ran: malformed options (an
                 ///< unparseable Backend spec) or, at the service layer,
                 ///< inadmissible input. FailureReason says why; no
                 ///< property was decided and no certificate exists.
};

/// One step of the proof-search trace (paper Figure 4's constructors).
struct TraceStep {
  enum class Kind { Skip, Extend, Done } K;
  GuardedFormula Psi; ///< The conjunct considered (empty formula on Done).
  size_t WpCount = 0; ///< Extend: how many preconditions were pushed.
};

/// Counters the benchmark harness reports (Table 2 columns and §7.3
/// discussion material).
struct CheckStats {
  size_t Iterations = 0;
  size_t Extends = 0;
  size_t Skips = 0;
  size_t SmtQueries = 0;
  size_t ReachPairs = 0;
  size_t TemplatesLeft = 0;
  size_t TemplatesRight = 0;
  size_t FinalConjuncts = 0;
  size_t PeakFrontier = 0;
  size_t FormulaNodes = 0; ///< Σ sizes of conjuncts in final R.
  uint64_t WallMicros = 0;
  uint64_t SolverMicros = 0;
};

struct CheckResult {
  Verdict V = Verdict::NotEquivalent;
  CheckStats Stats;
  /// Valid when V == Equivalent; re-check with replayCertificate().
  EquivalenceCertificate Certificate;
  /// On NotEquivalent: which conjunct refuted φ, for diagnostics.
  std::string FailureReason;
  std::vector<TraceStep> Trace; ///< Populated iff RecordTrace.
  /// Per-goal DRUP slice streams recorded when Options.Certify was set:
  /// one stream per solver session (workers' streams concatenated in
  /// worker order by the parallel engine) plus one-shot streams for
  /// monolithic queries. Together with Certificate this is what
  /// core/CertificateIo.h serializes for leapfrog-certcheck. Shared
  /// ownership because results are copied around by caches.
  std::shared_ptr<smt::ProofLog> Proof;

  bool equivalent() const { return V == Verdict::Equivalent; }
};

/// Runs Algorithm 1 for the property \p Spec over \p Left / \p Right.
///
/// Preconditions: both automata must be well-typed (⊢A, p4a::typeCheck)
/// — asserted in debug builds — and \p Spec must refer only to states,
/// headers and templates of these two automata (templates must satisfy
/// n < ||op(q)|| for user states, n = 0 for accept/reject).
///
/// Certificate guarantee: when the verdict is Equivalent, the returned
/// CheckResult::Certificate is self-contained — replayCertificate()
/// (Certificate.h) re-derives and re-discharges every initiation,
/// consecution and inclusion obligation without reusing any search state,
/// so trusting the verdict requires trusting only the replayer's lowering
/// chain and the SMT backend (and with BitBlastSolver::CertifyUnsat set,
/// only the DRUP proof checker). A NotEquivalent or ResourceLimit verdict
/// carries no certificate and certifies nothing.
///
/// Complexity: each worklist iteration discharges one entailment ⋀R ⊨ ψ,
/// i.e. one FOL(BV) validity query (NP-hard in formula size; see
/// smt/Solver.h). The number of distinct guards is bounded by
/// |templates(Left)| × |templates(Right)| — templates number
/// Σ_q ||op(q)|| + 2 per side, so pseudo-polynomial in total header
/// width — and the frontier deduplicates α-equivalent conjuncts per
/// guard. UseLeaps replaces ♯-many bit-level WP steps by one leap step;
/// UseReachability restricts guards to abstractly reachable pairs. The
/// §7.3 ablations show the checker does not terminate in practice with
/// either disabled.
CheckResult checkWithSpec(const p4a::Automaton &Left,
                          const p4a::Automaton &Right,
                          const InitialSpec &Spec,
                          const CheckOptions &Options = CheckOptions());

/// Language equivalence of two start states "regardless of initial store":
/// L(⟨QL, s1, ε⟩) = L(⟨QR, s2, ε⟩) for all s1, s2 (paper §4).
/// Shorthand for checkWithSpec(languageEquivalenceSpec(...)); the same
/// preconditions, certificate guarantee and complexity notes apply.
/// \p QL / \p QR must be states of their respective automata.
CheckResult checkLanguageEquivalence(const p4a::Automaton &Left,
                                     p4a::StateRef QL,
                                     const p4a::Automaton &Right,
                                     p4a::StateRef QR,
                                     const CheckOptions &Options =
                                         CheckOptions());

/// Convenience overload resolving states by name; asserts they exist.
CheckResult checkLanguageEquivalence(const p4a::Automaton &Left,
                                     const std::string &QL,
                                     const p4a::Automaton &Right,
                                     const std::string &QR,
                                     const CheckOptions &Options =
                                         CheckOptions());

} // namespace core
} // namespace leapfrog

#endif // LEAPFROG_CORE_CHECKER_H
