//===- CertificateIo.h - Serializing certificates for certcheck -*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The writer side of the LFCERT format (cert/CertFormat.h): turns a
/// completed Equivalent check — its relation certificate plus the proof
/// streams captured under CheckOptions::Certify — into the textual
/// artifact that the standalone leapfrog-certcheck verifier replays with
/// no engine linkage. The serve layer stores the compressed form on disk
/// keyed by request fingerprint (serve/Service.h); the CLI writes it via
/// --emit-cert.
///
/// The reader (cert/CertVerify.h) is deliberately NOT this file's
/// inverse-at-the-type-level: it re-parses the text through its own
/// grammar and replays the streams through its own RUP checker, so the
/// writer is not part of the verifier's trusted base.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_CORE_CERTIFICATEIO_H
#define LEAPFROG_CORE_CERTIFICATEIO_H

#include "core/Certificate.h"
#include "smt/ProofLog.h"

#include <string>

namespace leapfrog {
namespace core {

/// Renders \p Cert and the captured proof streams \p Proof (may be null:
/// a relation-only certificate with zero streams) into LFCERT text.
/// \p FingerprintHex is the request key the artifact is pinned to (the
/// service's cache-key fingerprint); pass "" for an unpinned certificate
/// (serialized as "-"). The automata supply the header widths and state
/// names the rendering mentions.
std::string serializeCertificate(const p4a::Automaton &Left,
                                 const p4a::Automaton &Right,
                                 const EquivalenceCertificate &Cert,
                                 const smt::ProofLog *Proof,
                                 const std::string &FingerprintHex);

/// Wraps serialized text in the LFCZ1 compression container — the
/// on-disk form of the certificate store. verifyCertificate accepts both.
std::string compressCertificate(const std::string &CertText);

} // namespace core
} // namespace leapfrog

#endif // LEAPFROG_CORE_CERTIFICATEIO_H
