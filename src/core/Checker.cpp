//===- Checker.cpp - Symbolic equivalence checking (Algorithm 1) ----------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"

#include "core/FrontierKey.h"
#include "obs/Clock.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "core/WeakestPrecondition.h"
#include "logic/Lower.h"
#include "p4a/Typing.h"
#include "parallel/ParallelChecker.h"
#include "smt/ProofLog.h"
#include "smt/SmtLibSolver.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

using namespace leapfrog;
using namespace leapfrog::core;
using namespace leapfrog::logic;

InitialSpec core::languageEquivalenceSpec(const p4a::Automaton &Left,
                                          p4a::StateRef QL,
                                          const p4a::Automaton &Right,
                                          p4a::StateRef QR) {
  (void)Left;
  (void)Right;
  InitialSpec Spec;
  Spec.TP = TemplatePair{Template{QL, 0}, Template{QR, 0}};
  Spec.Premise = Pure::mkTrue();
  return Spec;
}

CheckResult core::checkWithSpec(const p4a::Automaton &Left,
                                const p4a::Automaton &Right,
                                const InitialSpec &Spec,
                                const CheckOptions &Options) {
  assert(p4a::isWellTyped(Left) && "left automaton is ill-typed");
  assert(p4a::isWellTyped(Right) && "right automaton is ill-typed");

  // Backend resolution: a textual spec becomes an owned solver instance
  // for exactly this invocation — the one-shot inline equivalent of
  // core::Engine::create, including its failure contract: an unparseable
  // spec never runs the search and never silently degrades to another
  // backend; it comes back as a structured BadRequest the caller (CLI
  // exit code, service error response) can surface. Resolved before the
  // engine dispatch so the parallel engine sees the constructed backend
  // (and spawns its per-worker instances from it). An explicit Solver
  // wins — it is already a resolved backend.
  if (!Options.Backend.empty() && Options.Solver == nullptr) {
    std::string BackendSpec = Options.Backend;
    // Certified checks route external backends through cross-check mode:
    // an SMT-LIB process exposes no proof we could replay without
    // get-proof support, but the cross-checking reference leg answers
    // (and records slices for) every query the external solver is merely
    // compared against — so the in-repo proof covers the verdict.
    if (Options.Certify && BackendSpec.rfind("smtlib:", 0) == 0)
      BackendSpec = "crosscheck:" + BackendSpec.substr(std::string("smtlib:").size());
    std::string Err;
    std::unique_ptr<smt::SmtSolver> Owned =
        smt::createSolverBackend(BackendSpec, &Err);
    if (!Owned) {
      CheckResult Rejected;
      Rejected.V = Verdict::BadRequest;
      Rejected.FailureReason =
          "unrecognized solver backend '" + Options.Backend + "': " + Err;
      return Rejected;
    }
    CheckOptions Resolved = Options;
    Resolved.Backend.clear();
    Resolved.Solver = Owned.get();
    return checkWithSpec(Left, Right, Spec, Resolved);
  }

  // Parallel frontier engine (parallel/ParallelChecker.cpp): same
  // decisions, work-sharded. The engine needs one independent backend
  // per worker (SmtSolver::spawnWorker); when the backend cannot supply
  // them (e.g. a test's custom SmtSolver) the engine hands the call
  // straight back here with Jobs = 1, and the single-threaded loop
  // below poses every query to the one provided instance.
  if (Options.Jobs > 1)
    return parallel::checkWithSpecParallel(Left, Right, Spec, Options);

  obs::ScopedSpan CheckSpan("check.run", "check");
  obs::StopWatch Watch;
  smt::SmtSolver &Solver =
      Options.Solver ? *Options.Solver : smt::defaultSolver();
  uint64_t SolverMicrosBefore = Solver.stats().TotalMicros;

  CheckResult Result;

  // Proof capture (Options.Certify): attach a log the resolved backend
  // streams per-goal DRUP slices into — sessions opened below record one
  // stream each, one-shot queries (early refutation, done checks, the
  // non-incremental ablation) record one-shot streams. The guard detaches
  // on every return path; the log itself lives on in Result.Proof.
  struct CaptureGuard {
    smt::SmtSolver *S = nullptr;
    ~CaptureGuard() {
      if (S)
        S->detachProofLog();
    }
  } Capture;
  if (Options.Certify) {
    Result.Proof = std::make_shared<smt::ProofLog>();
    if (!Solver.attachProofLog(Result.Proof.get())) {
      Result.Proof.reset();
      Result.V = Verdict::BadRequest;
      Result.FailureReason =
          "certification requested, but the solver backend cannot capture "
          "proof streams (see smt::SmtSolver::attachProofLog); use the "
          "bitblast backend, or crosscheck for external solvers";
      return Result;
    }
    Capture.S = &Solver;
  }

  CheckStats &St = Result.Stats;
  // Bulk-flush the run's decision counters into the process registry on
  // every exit path (including budget stops and refutations): one relaxed
  // add per counter per check, nothing on the per-iteration path.
  struct MetricsFlush {
    CheckStats &St;
    ~MetricsFlush() {
      obs::Registry &M = obs::metrics();
      static obs::Counter &Runs = M.counter("check.runs");
      static obs::Counter &Iterations = M.counter("check.iterations");
      static obs::Counter &Extends = M.counter("check.extends");
      static obs::Counter &Skips = M.counter("check.skips");
      static obs::Counter &Queries = M.counter("check.smt_queries");
      Runs.add();
      Iterations.add(St.Iterations);
      Extends.add(St.Extends);
      Skips.add(St.Skips);
      Queries.add(St.SmtQueries);
    }
  } Flush{St};
  St.TemplatesLeft = allTemplates(Left).size();
  St.TemplatesRight = allTemplates(Right).size();

  // §5.1/§5.3: restrict attention to abstractly reachable template pairs.
  std::vector<TemplatePair> Pairs =
      Options.UseReachability
          ? computeReach(Left, Right, Spec.TP, Options.UseLeaps)
          : allPairs(Left, Right);
  St.ReachPairs = Pairs.size();

  // Frontier T: initial relation I, then extra user conjuncts (§7.1).
  std::deque<GuardedFormula> T;
  std::unordered_set<std::string> Seen;
  auto Push = [&](GuardedFormula G) {
    if (G.Phi->kind() == Pure::Kind::True)
      return; // Trivial conjunct: entailed by anything.
    // Deduplicate up to α-renaming on the exact keys of FrontierKey.h
    // (shared with the parallel engine; see that header for the key
    // discipline and the hash-collision soundness bug it pins).
    if (!Seen.insert(detail::frontierKey(G)).second)
      return;
    T.push_back(std::move(G));
    St.PeakFrontier = std::max(St.PeakFrontier, T.size());
  };
  for (GuardedFormula &G : buildInitialConjuncts(Spec, Pairs))
    Push(std::move(G));

  std::vector<GuardedFormula> R;
  size_t FreshCounter = 0;

  PureRef Premise =
      Spec.Premise ? Spec.Premise : Pure::mkTrue();

  // Incremental entailment state (one solver session per template pair).
  // Premises with a guard other than the goal's are filtered out of every
  // entailment (lowerEntailment stage 2), so the premise set a query sees
  // is exactly {P ∈ R | P.TP = goal.TP} — a set that only grows. Keeping
  // one session per guard lets each conjunct be lowered and bit-blasted
  // exactly once per run, with NextConjunct tracking the prefix of R the
  // session has already consumed.
  struct TpSession {
    std::unique_ptr<smt::SmtSolver::IncrementalSession> Session;
    size_t NextConjunct = 0;
  };
  std::unordered_map<TemplatePair, TpSession, logic::TemplatePairHasher>
      Sessions;
  auto SessionFor = [&](const TemplatePair &TP) -> TpSession & {
    TpSession &TS = Sessions[TP];
    if (!TS.Session)
      TS.Session = Solver.openSession(Options.Limits);
    return TS;
  };

  // Main worklist (Algorithm 1 / the pre_bisimulation relation, Fig. 4).
  auto OverBudget = [&](const char *What) {
    Result.V = Verdict::ResourceLimit;
    Result.FailureReason = std::string(What) + " limit reached with " +
                           std::to_string(T.size()) +
                           " frontier conjuncts outstanding";
    St.FinalConjuncts = R.size();
    St.WallMicros = Watch.elapsedMicros();
    St.SolverMicros = Solver.stats().TotalMicros - SolverMicrosBefore;
  };

  // Feeds \p TS every conjunct of R[0..UpTo) guarded by \p TP that it has
  // not consumed yet (NextConjunct is the session's global prefix pointer
  // into R, advanced past non-matching guards as well).
  auto Prime = [&](TpSession &TS, const TemplatePair &TP, size_t UpTo) {
    for (; TS.NextConjunct < UpTo; ++TS.NextConjunct) {
      const GuardedFormula &P = R[TS.NextConjunct];
      if (P.TP != TP)
        continue;
      TS.Session->assertPremise(lowerPure(Left, Right, TP, P.Phi));
    }
  };

  // Applies one decided frontier entry — the tail of a worklist iteration:
  // Skip bookkeeping, or Extend with early refutation and precondition
  // expansion. Returns false when the run is over (the refutation path
  // filled Result). Shared between the classic one-at-a-time loop and the
  // batched window loop below, so the two paths cannot drift.
  auto Apply = [&](GuardedFormula Psi, bool Entailed) -> bool {
    if (Entailed) {
      ++St.Skips;
      if (Options.RecordTrace)
        Result.Trace.push_back(TraceStep{TraceStep::Kind::Skip, Psi, 0});
      return true;
    }

    // Extend: ψ is a novel restriction; its preconditions join the
    // frontier so closure under (leap) steps is re-established.
    ++St.Extends;
    R.push_back(Psi);

    // Early refutation. Every symbolic bisimulation entails ⋀R ∧ ⋀T
    // (invariant (3) in the proof of Theorem 4.6), so if φ already fails
    // against this conjunct no bisimulation can contain φ and the final
    // Done check is doomed — report NotEquivalent now. This also keeps
    // the checker total on inequivalent parsers with loops, where the
    // frontier itself need not drain (see DESIGN.md §5).
    if (Psi.TP == Spec.TP) {
      smt::BvFormulaRef Query = lowerPure(
          Left, Right, Spec.TP, Pure::mkImplies(Premise, Psi.Phi));
      bool Valid = Query->kind() == smt::BvFormula::Kind::True;
      if (!Valid && Query->kind() != smt::BvFormula::Kind::False) {
        ++St.SmtQueries;
        Valid = Solver.isValid(Query);
      }
      if (!Valid) {
        Result.V = Verdict::NotEquivalent;
        Result.FailureReason = "refuted: phi does not entail conjunct " +
                               Psi.str(Left, Right);
        St.FinalConjuncts = R.size();
        St.WallMicros = Watch.elapsedMicros();
        St.SolverMicros = Solver.stats().TotalMicros - SolverMicrosBefore;
        return false;
      }
    }

    std::vector<GuardedFormula> Wp = weakestPrecondition(
        Left, Right, Psi, Pairs, Options.UseLeaps, FreshCounter);
    if (Options.RecordTrace)
      Result.Trace.push_back(
          TraceStep{TraceStep::Kind::Extend, Psi, Wp.size()});
    for (GuardedFormula &G : Wp)
      Push(std::move(G));
    return true;
  };

  if (Options.GoalBatch > 1 && Options.UseIncremental) {
    // Batched window mode (CheckOptions::GoalBatch): decide frontier
    // entries one window at a time, posing goals *lazily* — at their
    // replay turn, against the live premise set — and gathering upcoming
    // same-guard window entries into the same checkSatBatch call when the
    // guard's batching gate is open. The gate is the run's own history: a
    // guard batches while its most recent decision was a Skip, and poses
    // one goal at a time after an Extend. Skip-heavy stretches (the
    // common case on equivalent parsers past the warm-up extends) then
    // share one physical round-trip across up to GoalBatch entailed
    // goals, while extend-heavy stretches degrade to *exactly* the
    // classic one-query-per-goal cost — speculatively pre-posing a window
    // against frozen premises loses on those, because most answers go
    // stale before their replay turn.
    //
    // Answer reuse is governed by the freeze rules the parallel engine
    // relies on (parallel/ParallelChecker.cpp): an Unsat (entailed)
    // answer never goes stale — entailment is monotone in premises, and
    // a query consults only same-guard premises (lowerEntailment
    // stage 2) — while a Sat answer is stale iff a same-guard conjunct
    // extended after it was posed (LastExtendR tracks the bound); stale
    // answers are re-posed at their turn. Decisions, trace and relation
    // are therefore bit-identical to GoalBatch == 1; only
    // SolverStats::RoundTrips (and the posed-query count) change. Window
    // entries stay in T until their replay turn so frontier size —
    // PeakFrontier, budget messages — is exactly classic.
    const size_t Window = Options.Chunk ? Options.Chunk : 32;
    // Per-guard batching gate, persistent across windows: true while the
    // guard's last decision this run was a Skip.
    std::unordered_map<TemplatePair, bool, logic::TemplatePairHasher>
        Batchable;
    while (!T.empty()) {
      size_t W = std::min(Window, T.size());

      struct WindowGoal {
        smt::BvFormulaRef Goal;
        bool Trivial = false; ///< Lowered to constant True: no query.
        bool Posed = false;
        smt::SatResult Answer = smt::SatResult::Sat;
        size_t PosedAtR = 0; ///< R.size() the answer was computed against.
      };
      std::vector<WindowGoal> Goals(W);
      std::unordered_map<TemplatePair, std::vector<size_t>,
                         logic::TemplatePairHasher>
          Groups;
      for (size_t I = 0; I < W; ++I) {
        const GuardedFormula &Psi = T[I];
        Goals[I].Goal = lowerPure(Left, Right, Psi.TP, Psi.Phi);
        if (Goals[I].Goal->kind() == smt::BvFormula::Kind::True) {
          Goals[I].Trivial = true; // Classic short-circuit: no query.
          continue;
        }
        Groups[Psi.TP].push_back(I);
      }

      // Within-window extend bound per guard: a Sat answer posed at
      // PosedAtR is stale iff PosedAtR < LastExtendR[guard]. Extends in
      // earlier windows need no tracking — every answer this window is
      // posed at the live R of its turn, which already includes them.
      std::unordered_map<TemplatePair, size_t, logic::TemplatePairHasher>
          LastExtendR;
      for (size_t I = 0; I < W; ++I) {
        if (++St.Iterations > Options.MaxIterations) {
          OverBudget("iteration");
          return Result;
        }
        if (Options.MaxWallMicros != 0 && (St.Iterations & 0xf) == 0 &&
            Watch.elapsedMicros() > Options.MaxWallMicros) {
          OverBudget("wall-clock");
          return Result;
        }
        GuardedFormula Psi = std::move(T.front());
        T.pop_front();

        bool Entailed;
        if (Goals[I].Trivial) {
          Entailed = true;
        } else {
          auto Bound = LastExtendR.find(Psi.TP);
          bool Stale = Goals[I].Posed &&
                       Goals[I].Answer == smt::SatResult::Sat &&
                       Bound != LastExtendR.end() &&
                       Goals[I].PosedAtR < Bound->second;
          if (!Goals[I].Posed || Stale) {
            TpSession &TS = SessionFor(Psi.TP);
            Prime(TS, Psi.TP, R.size());
            // This goal must be decided now; pull upcoming unposed
            // same-guard window entries into the same physical call
            // while the gate is open.
            std::vector<size_t> Members{I};
            if (Batchable[Psi.TP])
              for (size_t J : Groups[Psi.TP])
                if (J > I && !Goals[J].Posed &&
                    Members.size() < Options.GoalBatch)
                  Members.push_back(J);
            std::vector<smt::BvFormulaRef> Batch;
            Batch.reserve(Members.size());
            for (size_t M : Members)
              Batch.push_back(smt::BvFormula::mkNot(Goals[M].Goal));
            std::vector<smt::SatResult> Out;
            TS.Session->checkSatBatch(Batch, Out);
            St.SmtQueries += Batch.size();
            for (size_t K = 0; K < Members.size(); ++K) {
              Goals[Members[K]].Posed = true;
              Goals[Members[K]].Answer = Out[K];
              Goals[Members[K]].PosedAtR = R.size();
            }
          }
          Entailed = Goals[I].Answer == smt::SatResult::Unsat;
          Batchable[Psi.TP] = Entailed;
        }
        if (!Entailed)
          LastExtendR[Psi.TP] = R.size() + 1; // Apply pushes Psi onto R.
        if (!Apply(std::move(Psi), Entailed))
          return Result;
      }
    }
  } else {
    while (!T.empty()) {
      if (++St.Iterations > Options.MaxIterations) {
        OverBudget("iteration");
        return Result;
      }
      if (Options.MaxWallMicros != 0 && (St.Iterations & 0xf) == 0 &&
          Watch.elapsedMicros() > Options.MaxWallMicros) {
        OverBudget("wall-clock");
        return Result;
      }
      GuardedFormula Psi = std::move(T.front());
      T.pop_front();

      // Entailment ⋀R ⊨ ψ, lowered through the Figure 6 chain. The smart
      // constructors may already have collapsed the query to a constant.
      bool Entailed;
      if (Options.UseIncremental) {
        // Incremental path: lower the goal alone (store-eliminated names
        // depend only on (automata, guard), so per-conjunct lowering
        // agrees with lowering the whole implication — see logic/Lower.h),
        // feed the session any conjuncts of R it has not seen, and pose ψ
        // as a goal query. An UNSAT premise set entails everything, which
        // the session also answers correctly (UNSAT stays UNSAT under ¬ψ).
        smt::BvFormulaRef Goal = lowerPure(Left, Right, Psi.TP, Psi.Phi);
        if (Goal->kind() == smt::BvFormula::Kind::True) {
          Entailed = true;
        } else {
          TpSession &TS = SessionFor(Psi.TP);
          Prime(TS, Psi.TP, R.size());
          ++St.SmtQueries;
          Entailed = TS.Session->isEntailed(Goal);
        }
      } else {
        LowerResult Lowered = lowerEntailment(Left, Right, R, Psi);
        if (Lowered.Query->kind() == smt::BvFormula::Kind::True) {
          Entailed = true;
        } else if (Lowered.Query->kind() == smt::BvFormula::Kind::False) {
          Entailed = false;
        } else {
          ++St.SmtQueries;
          Entailed = Solver.isValid(Lowered.Query);
        }
      }

      if (!Apply(std::move(Psi), Entailed))
        return Result;
    }
  }

  // Done: check φ ⊨ ⋀R. Conjuncts guarded by other template pairs hold
  // vacuously on φ's configurations; for matching guards the premise must
  // imply the conjunct.
  Result.V = Verdict::Equivalent;
  for (const GuardedFormula &Conjunct : R) {
    if (Conjunct.TP != Spec.TP)
      continue;
    smt::BvFormulaRef Query = lowerPure(
        Left, Right, Spec.TP, Pure::mkImplies(Premise, Conjunct.Phi));
    bool Valid;
    if (Query->kind() == smt::BvFormula::Kind::True) {
      Valid = true;
    } else if (Query->kind() == smt::BvFormula::Kind::False) {
      Valid = false;
    } else {
      ++St.SmtQueries;
      Valid = Solver.isValid(Query);
    }
    if (!Valid) {
      Result.V = Verdict::NotEquivalent;
      Result.FailureReason =
          "final check failed: phi does not entail conjunct " +
          Conjunct.str(Left, Right);
      break;
    }
  }
  if (Options.RecordTrace)
    Result.Trace.push_back(
        TraceStep{TraceStep::Kind::Done,
                  GuardedFormula{Spec.TP, Pure::mkTrue()}, 0});

  St.FinalConjuncts = R.size();
  for (const GuardedFormula &G : R)
    St.FormulaNodes += G.Phi->size();

  if (Result.V == Verdict::Equivalent) {
    EquivalenceCertificate &Cert = Result.Certificate;
    Cert.Spec = Spec;
    Cert.Spec.Premise = Premise;
    Cert.Relation = R;
    Cert.UseLeaps = Options.UseLeaps;
    Cert.UseReachability = Options.UseReachability;
  }

  St.WallMicros = Watch.elapsedMicros();
  St.SolverMicros = Solver.stats().TotalMicros - SolverMicrosBefore;
  return Result;
}

CheckResult core::checkLanguageEquivalence(const p4a::Automaton &Left,
                                           p4a::StateRef QL,
                                           const p4a::Automaton &Right,
                                           p4a::StateRef QR,
                                           const CheckOptions &Options) {
  return checkWithSpec(Left, Right,
                       languageEquivalenceSpec(Left, QL, Right, QR),
                       Options);
}

CheckResult core::checkLanguageEquivalence(const p4a::Automaton &Left,
                                           const std::string &QL,
                                           const p4a::Automaton &Right,
                                           const std::string &QR,
                                           const CheckOptions &Options) {
  auto L = Left.findState(QL);
  auto R = Right.findState(QR);
  assert(L && R && "start state name not found");
  return checkLanguageEquivalence(Left, p4a::StateRef::normal(*L), Right,
                                  p4a::StateRef::normal(*R), Options);
}
