//===- Reachability.h - Template abstraction and reachability ---*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The template-level abstract interpretation of §5.1 and the leap sizes
/// of §5.2. Templates ⟨q, n⟩ abstract configurations by dropping the store
/// and buffer *contents*, keeping only the state and buffer *length*; the
/// abstract step σ over-approximates δ, so the template pairs reachable
/// from the initial pair over-approximate the configuration pairs the
/// checker must constrain. Pruning the rest "lets us avoid spurious search
/// steps through unreachable configurations" (§2) — the ablation benchmark
/// shows the paper's observation that the algorithm does not finish
/// without it (§7.3).
///
/// Both σ and reachability come in bit-level (k = 1) and leap (k = ♯)
/// flavours, selected by a flag, implementing the "combined optimization"
/// of §5.3.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_CORE_REACHABILITY_H
#define LEAPFROG_CORE_REACHABILITY_H

#include "logic/ConfRel.h"

#include <vector>

namespace leapfrog {
namespace core {

using logic::Template;
using logic::TemplatePair;

/// All templates of \p Aut: ⟨q, n⟩ for every user state q and every
/// 0 ≤ n < ||op(q)||, plus ⟨accept, 0⟩ and ⟨reject, 0⟩ (Definition 4.7).
std::vector<Template> allTemplates(const p4a::Automaton &Aut);

/// Bits a configuration described by \p T still needs before its state
/// block fires: ||op(q)|| − n for user states (always ≥ 1), or SIZE_MAX
/// for terminal states (they never fire a block).
size_t templateDeficit(const p4a::Automaton &Aut, Template T);

/// The leap size ♯ of Definition 5.3, lifted to templates (it only depends
/// on states and buffer lengths): the number of steps until the next
/// "real" state-to-state transition on either side.
size_t leapSize(const p4a::Automaton &Left, const p4a::Automaton &Right,
                TemplatePair TP);

/// σ lifted to \p K consecutive steps: the templates that configurations
/// described by \p T can be in after exactly K bits. Requires K ≤ deficit
/// (the leap regime): buffering sides advance deterministically, a side
/// whose buffer fills transitions to each syntactic successor, terminal
/// sides collapse to ⟨reject, 0⟩.
std::vector<Template> templateSuccessors(const p4a::Automaton &Aut,
                                         Template T, size_t K);

/// reach_φ (§5.1, computed with leaps per §5.3 when \p UseLeaps): the
/// least set of template pairs containing \p Start and closed under the
/// joint abstract step. Deterministic order (BFS discovery).
std::vector<TemplatePair> computeReach(const p4a::Automaton &Left,
                                       const p4a::Automaton &Right,
                                       TemplatePair Start, bool UseLeaps);

/// The full template-pair product (the unpruned domain used when the
/// reachability optimization is ablated).
std::vector<TemplatePair> allPairs(const p4a::Automaton &Left,
                                   const p4a::Automaton &Right);

} // namespace core
} // namespace leapfrog

#endif // LEAPFROG_CORE_REACHABILITY_H
