//===- Engine.h - Long-lived checking engine and request structs -*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The resolved-engine API the one-shot entry points of Checker.h wrap: a
/// core::Engine owns a *resolved* solver backend and the parallel
/// runtime's warm state for its whole lifetime, and decides any number of
/// CheckRequests against them. This is what a long-running service needs
/// and what the free functions cannot provide — checkWithSpec() constructs
/// and tears down its backend (external solver process included) on every
/// call, so nothing stays warm between two checks.
///
/// The redesign also collapses the old dual backend plumbing — the
/// CheckOptions::Solver instance pointer vs. the CheckOptions::Backend
/// spec string, resolved at different layers with different failure
/// behavior — into one step: Engine::create() resolves a spec (or adopts
/// a caller-owned instance) exactly once, and *rejects* an unparseable
/// spec with a structured error instead of warning on stderr and
/// degrading to bitblast. Per-request knobs (budgets, session limits,
/// search switches, tracing) stay in CheckOptions and travel with each
/// CheckRequest; engine-level fields of CheckOptions (Solver, Backend,
/// Jobs) are ignored by Engine::check, which substitutes its own.
///
/// Layering: Engine sits above Checker.h (it dispatches to the same
/// sequential loop and parallel frontier engine, so verdicts, stats,
/// traces and certificates are bit-identical to the free functions) and
/// below serve/ (which adds the result cache, admission control and the
/// wire protocol on top).
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_CORE_ENGINE_H
#define LEAPFROG_CORE_ENGINE_H

#include "core/Checker.h"
#include "p4a/Fingerprint.h"

#include <memory>
#include <string>
#include <vector>

namespace leapfrog {
namespace core {

/// Everything one equivalence check needs, owned in one place: the two
/// elaborated automata, the property, and the per-request knobs. Built
/// directly, via makeLanguageEquivalenceRequest(), or — the path the CLI
/// and the service share — from two `.lfp` surface texts through
/// checkRequestFromSurface(), so "parse, elaborate, validate, budget"
/// lives in exactly one piece of code for every front door.
struct CheckRequest {
  p4a::Automaton Left;
  p4a::Automaton Right;
  /// Start states (language equivalence roots; also the fingerprint
  /// roots the service cache keys on).
  p4a::StateRef LeftStart = p4a::StateRef::reject();
  p4a::StateRef RightStart = p4a::StateRef::reject();
  /// The property. The helpers build the standard language-equivalence
  /// spec over the start states; callers with §7.1 specs fill it in
  /// directly.
  InitialSpec Spec;
  /// Per-request knobs: budgets (MaxIterations, MaxWallMicros), session
  /// Limits, search switches and RecordTrace are honored; Solver,
  /// Backend and Jobs are engine-level and ignored by Engine::check.
  CheckOptions Options;
};

/// Builds a language-equivalence CheckRequest over two elaborated
/// automata (the automata are moved in; the request owns them).
CheckRequest makeLanguageEquivalenceRequest(p4a::Automaton Left,
                                            p4a::StateRef LeftStart,
                                            p4a::Automaton Right,
                                            p4a::StateRef RightStart,
                                            CheckOptions Options);

/// The shared surface-text front door: parses both `.lfp` texts,
/// elaborates them, and assembles a language-equivalence request rooted
/// at each program's `entry` state. On failure returns false and fills
/// \p Errors with diagnostics prefixed "<side-name>:" (line:col positions
/// included where the parser has them); \p Out must not be used. The
/// side names default to "left"/"right"; the CLI passes file paths so
/// diagnostics stay clickable.
bool checkRequestFromSurface(const std::string &LeftText,
                             const std::string &RightText,
                             const CheckOptions &Options, CheckRequest &Out,
                             std::vector<std::string> &Errors,
                             const std::string &LeftName = "left",
                             const std::string &RightName = "right");

/// The canonical parser-pair fingerprint of \p Req: the order-sensitive
/// combination of the rooted fingerprints of both sides (see
/// p4a/Fingerprint.h). This is the identity the service's result cache
/// and certificate store key on.
p4a::Fingerprint requestFingerprint(const CheckRequest &Req);

/// How the engine acquires its backend and how many workers it runs.
struct EngineConfig {
  /// Backend spec, resolved once by Engine::create() through
  /// smt::createSolverBackend(): "bitblast", "smtlib:<cmd>", or
  /// "crosscheck[:<cmd>]". An unparseable spec fails create() with a
  /// structured error — never a silent fallback. Ignored when Solver is
  /// set.
  std::string Backend = "bitblast";
  /// A caller-owned, already-resolved backend instance; must outlive the
  /// engine. Overrides Backend.
  smt::SmtSolver *Solver = nullptr;
  /// Run every check on this engine with proof capture
  /// (CheckOptions::Certify): Equivalent verdicts come back with
  /// CheckResult::Proof populated, ready for core/CertificateIo.h. Like
  /// the per-request flag, this rewrites an "smtlib:<cmd>" Backend spec
  /// to "crosscheck:<cmd>" at create() time, so external-solver engines
  /// stay certifiable (the cross-checking reference leg records the
  /// slices). The service sets this when it runs a certificate store.
  bool Certify = false;
  /// Worker threads for every check run on this engine (the
  /// CheckOptions::Jobs of old, hoisted to the engine where the warm
  /// per-worker backends live). 1 = the sequential loop.
  size_t Jobs = 1;
};

/// A long-lived equivalence-checking engine: one resolved backend plus —
/// with Jobs > 1 — warm per-worker backends and a parked worker pool,
/// reused across every check() for the engine's lifetime. Decisions are
/// bit-identical to checkWithSpec() with the same options; only what
/// stays warm between calls differs.
///
/// Not thread-safe: one check() at a time, from the thread that owns the
/// engine (the service runs one engine per lane; see serve/Service.h).
class Engine {
public:
  /// Resolves \p Config into an engine. Returns nullptr and sets
  /// \p Error (if non-null) when the backend spec does not parse — the
  /// structured rejection a server hands back to the client, replacing
  /// the old warn-and-degrade-to-bitblast path. A parseable spec whose
  /// external binary is missing still constructs (SmtLibSolver degrades
  /// per query, by design: that knob changes performance, never
  /// verdicts).
  static std::unique_ptr<Engine> create(const EngineConfig &Config,
                                        std::string *Error = nullptr);

  ~Engine();
  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  /// Decides \p Req against the engine's warm backend and workers.
  CheckResult check(const CheckRequest &Req);

  /// Reference-taking variant for callers that keep their automata
  /// elsewhere (the checkWithSpec wrapper); \p Options is honored the
  /// same way as CheckRequest::Options.
  CheckResult check(const p4a::Automaton &Left, const p4a::Automaton &Right,
                    const InitialSpec &Spec, const CheckOptions &Options);

  /// The resolved primary backend (for stats introspection and
  /// backend-specific knobs — CertifyUnsat, external timeouts).
  smt::SmtSolver &solver();

  size_t jobs() const;

  /// Warm per-worker backends currently alive (0 until the first
  /// Jobs > 1 check; then Jobs for the engine's lifetime). Exposed so
  /// tools and tests can report per-worker external-solver stats and pin
  /// the one-process-per-worker lifecycle.
  size_t warmWorkerCount() const;
  smt::SmtSolver *warmWorker(size_t I);

private:
  Engine();
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace core
} // namespace leapfrog

#endif // LEAPFROG_CORE_ENGINE_H
