//===- Engine.cpp - Long-lived checking engine ----------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "core/Engine.h"

#include "frontend/Elaborate.h"
#include "frontend/Text.h"
#include "parallel/ParallelChecker.h"
#include "smt/SmtLibSolver.h"

using namespace leapfrog;
using namespace leapfrog::core;

CheckRequest core::makeLanguageEquivalenceRequest(p4a::Automaton Left,
                                                  p4a::StateRef LeftStart,
                                                  p4a::Automaton Right,
                                                  p4a::StateRef RightStart,
                                                  CheckOptions Options) {
  CheckRequest Req;
  Req.Left = std::move(Left);
  Req.Right = std::move(Right);
  Req.LeftStart = LeftStart;
  Req.RightStart = RightStart;
  // The spec must reference the automata the request owns, not the
  // moved-from arguments.
  Req.Spec = languageEquivalenceSpec(Req.Left, LeftStart, Req.Right,
                                     RightStart);
  Req.Options = std::move(Options);
  return Req;
}

namespace {

/// One side of the surface front door: parse, elaborate, resolve the
/// entry state. Diagnostics land in \p Errors prefixed "<Name>:".
bool loadSide(const std::string &Text, const std::string &Name,
              p4a::Automaton &Aut, p4a::StateRef &Start,
              std::vector<std::string> &Errors) {
  frontend::TextParseResult Parsed = frontend::parseSurface(Text);
  if (!Parsed.ok()) {
    for (const std::string &E : Parsed.Errors)
      Errors.push_back(Name + ":" + E);
    return false;
  }
  frontend::ElaborationResult Elab = frontend::elaborate(Parsed.Program);
  if (!Elab.ok()) {
    for (const std::string &E : Elab.Errors)
      Errors.push_back(Name + ": " + E);
    return false;
  }
  std::optional<p4a::StateId> Entry = Elab.Aut.findState(Elab.Entry);
  if (!Entry) {
    Errors.push_back(Name + ": entry state '" + Elab.Entry +
                     "' does not exist after elaboration");
    return false;
  }
  Aut = std::move(Elab.Aut);
  Start = p4a::StateRef::normal(*Entry);
  return true;
}

} // namespace

bool core::checkRequestFromSurface(const std::string &LeftText,
                                   const std::string &RightText,
                                   const CheckOptions &Options,
                                   CheckRequest &Out,
                                   std::vector<std::string> &Errors,
                                   const std::string &LeftName,
                                   const std::string &RightName) {
  p4a::Automaton Left, Right;
  p4a::StateRef LeftStart = p4a::StateRef::reject();
  p4a::StateRef RightStart = p4a::StateRef::reject();
  // Load both sides even when the first fails: a client fixing its
  // request wants all diagnostics in one round trip.
  bool LeftOk = loadSide(LeftText, LeftName, Left, LeftStart, Errors);
  bool RightOk = loadSide(RightText, RightName, Right, RightStart, Errors);
  if (!LeftOk || !RightOk)
    return false;
  Out = makeLanguageEquivalenceRequest(std::move(Left), LeftStart,
                                       std::move(Right), RightStart, Options);
  return true;
}

p4a::Fingerprint core::requestFingerprint(const CheckRequest &Req) {
  return p4a::combineFingerprints(p4a::fingerprint(Req.Left, Req.LeftStart),
                                  p4a::fingerprint(Req.Right, Req.RightStart));
}

struct Engine::Impl {
  EngineConfig Config;
  /// The resolved backend when created from a spec string; null when the
  /// caller supplied an instance.
  std::unique_ptr<smt::SmtSolver> OwnedPrimary;
  smt::SmtSolver *Primary = nullptr;
  /// Per-worker backends + parked threads, populated on the first
  /// Jobs > 1 check and reused for the engine's lifetime.
  parallel::WarmRuntime Warm;
};

Engine::Engine() : I(std::make_unique<Impl>()) {}
Engine::~Engine() = default;

std::unique_ptr<Engine> Engine::create(const EngineConfig &Config,
                                       std::string *Error) {
  std::unique_ptr<Engine> E(new Engine());
  E->I->Config = Config;
  if (Config.Jobs == 0)
    E->I->Config.Jobs = 1;
  if (Config.Solver) {
    E->I->Primary = Config.Solver;
    return E;
  }
  std::string Spec = Config.Backend.empty() ? "bitblast" : Config.Backend;
  // A certifying engine cannot run on a bare external backend (no proof
  // capture there); resolve to the cross-checking pair instead, whose
  // reference leg records the slices. Mirrors the checkWithSpec rewrite.
  if (Config.Certify && Spec.rfind("smtlib:", 0) == 0)
    Spec = "crosscheck:" + Spec.substr(std::string("smtlib:").size());
  std::string Err;
  E->I->OwnedPrimary = smt::createSolverBackend(Spec, &Err);
  if (!E->I->OwnedPrimary) {
    if (Error)
      *Error = "unrecognized solver backend '" + Spec + "': " + Err;
    return nullptr;
  }
  E->I->Primary = E->I->OwnedPrimary.get();
  return E;
}

CheckResult Engine::check(const p4a::Automaton &Left,
                          const p4a::Automaton &Right, const InitialSpec &Spec,
                          const CheckOptions &Options) {
  // Substitute the engine-level fields: the request's Solver/Backend/Jobs
  // are documented as ignored here, so a CheckRequest built for one
  // engine decides identically on another with the same configuration.
  CheckOptions O = Options;
  O.Solver = I->Primary;
  O.Backend.clear();
  O.Jobs = I->Config.Jobs;
  O.Certify = Options.Certify || I->Config.Certify;
  if (O.Jobs > 1)
    return parallel::checkWithSpecParallel(Left, Right, Spec, O, &I->Warm);
  return core::checkWithSpec(Left, Right, Spec, O);
}

CheckResult Engine::check(const CheckRequest &Req) {
  return check(Req.Left, Req.Right, Req.Spec, Req.Options);
}

smt::SmtSolver &Engine::solver() { return *I->Primary; }

size_t Engine::jobs() const { return I->Config.Jobs; }

size_t Engine::warmWorkerCount() const { return I->Warm.WorkerSolvers.size(); }

smt::SmtSolver *Engine::warmWorker(size_t Idx) {
  return Idx < I->Warm.WorkerSolvers.size() ? I->Warm.WorkerSolvers[Idx].get()
                                            : nullptr;
}
