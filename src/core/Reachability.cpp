//===- Reachability.cpp - Template abstraction and reachability -----------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "core/Reachability.h"

#include <deque>
#include <limits>
#include <unordered_set>

using namespace leapfrog;
using namespace leapfrog::core;

std::vector<Template> core::allTemplates(const p4a::Automaton &Aut) {
  std::vector<Template> Ts;
  for (p4a::StateId Q = 0; Q < Aut.numStates(); ++Q) {
    size_t Bits = Aut.opBits(Q);
    assert(Bits >= 1 && "state consumes no bits (⊢A violated)");
    for (size_t N = 0; N < Bits; ++N)
      Ts.push_back(Template{p4a::StateRef::normal(Q), N});
  }
  Ts.push_back(Template::accept());
  Ts.push_back(Template::reject());
  return Ts;
}

size_t core::templateDeficit(const p4a::Automaton &Aut, Template T) {
  if (T.Q.isTerminal())
    return std::numeric_limits<size_t>::max();
  size_t Bits = Aut.opBits(T.Q.Id);
  assert(T.N < Bits && "template buffer length out of range");
  return Bits - T.N;
}

size_t core::leapSize(const p4a::Automaton &Left, const p4a::Automaton &Right,
                      TemplatePair TP) {
  size_t DL = templateDeficit(Left, TP.L);
  size_t DR = templateDeficit(Right, TP.R);
  size_t K = std::min(DL, DR);
  // Both sides terminal: one step, straight to reject (Definition 5.3).
  if (K == std::numeric_limits<size_t>::max())
    return 1;
  return K;
}

std::vector<Template> core::templateSuccessors(const p4a::Automaton &Aut,
                                               Template T, size_t K) {
  assert(K >= 1 && "successor computation requires at least one step");
  std::vector<Template> Posts;
  if (T.Q.isTerminal()) {
    // Terminal configurations step to reject and stay there.
    Posts.push_back(Template::reject());
    return Posts;
  }
  size_t D = templateDeficit(Aut, T);
  assert(K <= D && "leap overshoots this side's transition");
  if (K < D) {
    Posts.push_back(Template{T.Q, T.N + K});
    return Posts;
  }
  // The buffer fills: the block runs and the transition actuates.
  for (p4a::StateRef Succ : Aut.successors(T.Q.Id))
    Posts.push_back(Template{Succ, 0});
  return Posts;
}

std::vector<TemplatePair> core::computeReach(const p4a::Automaton &Left,
                                             const p4a::Automaton &Right,
                                             TemplatePair Start,
                                             bool UseLeaps) {
  std::unordered_set<TemplatePair, logic::TemplatePairHasher> Seen;
  std::vector<TemplatePair> Order;
  std::deque<TemplatePair> Work;

  auto Push = [&](TemplatePair TP) {
    if (Seen.insert(TP).second) {
      Order.push_back(TP);
      Work.push_back(TP);
    }
  };
  Push(Start);

  while (!Work.empty()) {
    TemplatePair TP = Work.front();
    Work.pop_front();
    size_t K = UseLeaps ? leapSize(Left, Right, TP) : 1;
    // In bit-level mode a side whose deficit exceeds 1 merely buffers;
    // templateSuccessors handles both regimes uniformly given K ≤ deficit.
    for (Template PL : templateSuccessors(Left, TP.L, K))
      for (Template PR : templateSuccessors(Right, TP.R, K))
        Push(TemplatePair{PL, PR});
  }
  return Order;
}

std::vector<TemplatePair> core::allPairs(const p4a::Automaton &Left,
                                         const p4a::Automaton &Right) {
  std::vector<TemplatePair> Pairs;
  for (Template TL : allTemplates(Left))
    for (Template TR : allTemplates(Right))
      Pairs.push_back(TemplatePair{TL, TR});
  return Pairs;
}
