//===- WeakestPrecondition.h - Symbolic WP over P4 automata -----*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The weakest-precondition operator at the heart of Algorithm 1
/// (Lemmas 4.8 / 4.9), in its multi-step "leap" form (Theorem 5.7; the
/// bit-level form is the special case k = 1).
///
/// Given a goal  t1< ∧ t2> ⇒ ψ  and a source template pair (s1, s2), the
/// next k = ♯(s1, s2) packet bits are named by one fresh rigid variable X
/// shared by both sides — both automata read the *same* packet. Each side
/// then either:
///   - buffers (k < deficit): its buffer becomes buf ++ X, the store is
///     unchanged, and its post-template is ⟨q, n+k⟩ — the source
///     contributes a formula only if that equals the goal's template;
///   - transitions (k = deficit): its operation block runs symbolically on
///     buf ++ X, producing per-header expressions; the select discriminants
///     are evaluated over that symbolic store, and reaching the goal state
///     q' becomes a condition (first-match semantics respected);
///   - is terminal: it collapses to ⟨reject, 0⟩ with store untouched.
///
/// The emitted source formula is  s1< ∧ s2> ⇒ (Cond1 ∧ Cond2 ⇒ ψσ)  where
/// ψσ substitutes the post-state buffers and stores, and X is implicitly
/// universally quantified by the semantics of rigid variables.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_CORE_WEAKESTPRECONDITION_H
#define LEAPFROG_CORE_WEAKESTPRECONDITION_H

#include "core/Reachability.h"
#include "logic/ConfRel.h"

#include <vector>

namespace leapfrog {
namespace core {

using logic::BitExprRef;
using logic::GuardedFormula;
using logic::PureRef;
using logic::Side;

/// Symbolically evaluates a P4A expression over the symbolic store
/// \p Headers (one BitExpr per header of \p Side's automaton), in context
/// \p C. Mirrors ⟦e⟧E (Definition 3.1) with expressions instead of values.
BitExprRef symEvalExpr(const logic::Ctx &C, Side S, const p4a::ExprRef &E,
                       const std::vector<BitExprRef> &Headers);

/// Symbolically executes state \p Q's operation block with the full input
/// \p Input (an expression of width ||op(q)||); returns the post-store,
/// one expression per header. Mirrors ⟦op⟧O (Definition 3.2).
std::vector<BitExprRef> symExecOps(const logic::Ctx &C, Side S,
                                   const p4a::Automaton &Aut,
                                   p4a::StateId Q, const BitExprRef &Input);

/// The condition, over the symbolic post-store \p Headers, under which
/// state \p Q's transition block selects \p Target — respecting select's
/// first-match semantics and fall-through to reject. Mirrors ⟦tz⟧T
/// (Definition 3.3).
PureRef transitionCondition(const logic::Ctx &C, Side S,
                            const p4a::Automaton &Aut, p4a::StateId Q,
                            const std::vector<BitExprRef> &Headers,
                            p4a::StateRef Target);

/// WP(Goal) restricted to the given source template pairs (callers pass
/// the reach set, or the full product when reachability is ablated —
/// Theorem 5.2). \p UseLeaps selects k = ♯ (Theorem 5.7) vs k = 1
/// (Lemma 4.9). \p FreshCounter supplies fresh rigid-variable names.
std::vector<GuardedFormula>
weakestPrecondition(const p4a::Automaton &Left, const p4a::Automaton &Right,
                    const GuardedFormula &Goal,
                    const std::vector<TemplatePair> &Sources, bool UseLeaps,
                    size_t &FreshCounter);

} // namespace core
} // namespace leapfrog

#endif // LEAPFROG_CORE_WEAKESTPRECONDITION_H
