//===- Certificate.cpp - Replayable equivalence certificates --------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "core/Certificate.h"

#include "core/Reachability.h"
#include "core/WeakestPrecondition.h"
#include "logic/Lower.h"

using namespace leapfrog;
using namespace leapfrog::core;
using namespace leapfrog::logic;

std::string EquivalenceCertificate::str(const p4a::Automaton &Left,
                                        const p4a::Automaton &Right) const {
  std::string Out;
  Out += "certificate for phi guarded by [" + Left.refName(Spec.TP.L.Q) +
         "," + std::to_string(Spec.TP.L.N) + "]< & [" +
         Right.refName(Spec.TP.R.Q) + "," + std::to_string(Spec.TP.R.N) +
         "]> with premise " +
         (Spec.Premise ? Spec.Premise->str() : "true") + "\n";
  Out += "options: leaps=" + std::string(UseLeaps ? "on" : "off") +
         " reachability=" + std::string(UseReachability ? "on" : "off") +
         "\n";
  Out += "relation (" + std::to_string(Relation.size()) + " conjuncts):\n";
  for (const GuardedFormula &G : Relation)
    Out += "  " + G.str(Left, Right) + "\n";
  return Out;
}

namespace {

/// Checks one entailment ⋀R ⊨ Goal with \p Solver, folding constant
/// queries without a solver call.
bool entailed(const p4a::Automaton &Left, const p4a::Automaton &Right,
              const std::vector<GuardedFormula> &R, const GuardedFormula &G,
              smt::SmtSolver &Solver) {
  if (G.Phi->kind() == Pure::Kind::True)
    return true;
  LowerResult Lowered = lowerEntailment(Left, Right, R, G);
  if (Lowered.Query->kind() == smt::BvFormula::Kind::True)
    return true;
  if (Lowered.Query->kind() == smt::BvFormula::Kind::False)
    return false;
  return Solver.isValid(Lowered.Query);
}

} // namespace

ReplayResult core::replayCertificate(const p4a::Automaton &Left,
                                     const p4a::Automaton &Right,
                                     const EquivalenceCertificate &Cert,
                                     smt::SmtSolver *SolverArg) {
  smt::SmtSolver &Solver = SolverArg ? *SolverArg : smt::defaultSolver();
  ReplayResult Result;

  // Re-derive the template-pair domain from scratch; the certificate is
  // *not* trusted to provide it.
  std::vector<TemplatePair> Pairs =
      Cert.UseReachability
          ? computeReach(Left, Right, Cert.Spec.TP, Cert.UseLeaps)
          : allPairs(Left, Right);

  // Obligation 1 — initiation: ⋀R entails the independently re-derived
  // initial relation I (acceptance compatibility in the spec's mode, plus
  // any extra conjuncts the property was checked modulo).
  for (const GuardedFormula &G : buildInitialConjuncts(Cert.Spec, Pairs)) {
    ++Result.ObligationsChecked;
    if (!entailed(Left, Right, Cert.Relation, G, Solver)) {
      Result.FailureReason = "initiation: conjunct of I not entailed: " +
                             G.str(Left, Right);
      return Result;
    }
  }

  // Obligation 2 — consecution: ⋀R is closed under leap steps, i.e. every
  // weakest precondition of every conjunct is again entailed by ⋀R.
  size_t Fresh = 0;
  for (size_t I = 0; I < Cert.Relation.size(); ++I) {
    std::vector<GuardedFormula> Wp = weakestPrecondition(
        Left, Right, Cert.Relation[I], Pairs, Cert.UseLeaps, Fresh);
    for (const GuardedFormula &G : Wp) {
      ++Result.ObligationsChecked;
      if (!entailed(Left, Right, Cert.Relation, G, Solver)) {
        Result.FailureReason = "consecution: WP of conjunct #" +
                               std::to_string(I) +
                               " not entailed at " + G.str(Left, Right);
        return Result;
      }
    }
  }

  // Obligation 3 — inclusion: φ ⊨ ⋀R.
  PureRef Premise = Cert.Spec.Premise ? Cert.Spec.Premise : Pure::mkTrue();
  for (const GuardedFormula &Conjunct : Cert.Relation) {
    if (Conjunct.TP != Cert.Spec.TP)
      continue;
    ++Result.ObligationsChecked;
    smt::BvFormulaRef Query =
        lowerPure(Left, Right, Cert.Spec.TP,
                  Pure::mkImplies(Premise, Conjunct.Phi));
    bool Valid = Query->kind() == smt::BvFormula::Kind::True ||
                 (Query->kind() != smt::BvFormula::Kind::False &&
                  Solver.isValid(Query));
    if (!Valid) {
      Result.FailureReason = "inclusion: phi does not entail conjunct " +
                             Conjunct.str(Left, Right);
      return Result;
    }
  }

  Result.Valid = true;
  return Result;
}
