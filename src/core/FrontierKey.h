//===- FrontierKey.h - Exact frontier deduplication keys --------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The syntactic identity keys the checker's frontier deduplicates on,
/// shared between the sequential worklist loop (core/Checker.cpp) and the
/// parallel frontier engine (parallel/ParallelChecker.cpp). Both engines
/// MUST use the same keys: deduplication deletes frontier work, so any
/// divergence between them would make the engines explore different
/// frontiers and break the parallel-vs-sequential differential guarantee.
///
/// The guard must be rendered *exactly*, never hashed: a key collision
/// silently drops a conjunct and can flip the verdict. This is not
/// theoretical — keying on TemplatePair::hash() shipped with a real
/// collision (the boost-style hashCombine cancels on correlated small-int
/// deltas: pairs ⟨q0,2⟩·⟨q0,0⟩ and ⟨q0,3⟩·⟨q1,0⟩ collide), which made the
/// checker report two inequivalent parsers "equivalent" by swallowing the
/// refutation chain. CheckerDedup.HashCollisionPairsStayDistinct pins the
/// exact pair.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_CORE_FRONTIERKEY_H
#define LEAPFROG_CORE_FRONTIERKEY_H

#include "logic/ConfRel.h"

#include <string>

namespace leapfrog {
namespace core {
namespace detail {

inline std::string templateKey(const logic::Template &T) {
  return std::to_string(int(T.Q.K)) + ":" + std::to_string(T.Q.Id) + ":" +
         std::to_string(T.N);
}

/// Exact rendering of a guarded formula; two formulas with the same key
/// are interchangeable in R/T, so pushing both wastes an SMT query.
inline std::string formulaKey(const logic::GuardedFormula &G) {
  return templateKey(G.TP.L) + "," + templateKey(G.TP.R) + "|" +
         G.Phi->str();
}

/// The frontier dedup key: exact rendering of the α-canonicalized
/// conjunct. Canonicalization makes α-equivalent conjuncts (the WP
/// operator mints fresh variables on every application) share a key; the
/// *stored* formula keeps its original names — a WP child shares its
/// parent conjunct's variables, and that identity is what lets the
/// entailment check discharge the child against the parent (see
/// logic::canonicalize for why renaming must not be applied to the stored
/// formula).
inline std::string frontierKey(const logic::GuardedFormula &G) {
  return formulaKey(logic::canonicalize(G));
}

} // namespace detail
} // namespace core
} // namespace leapfrog

#endif // LEAPFROG_CORE_FRONTIERKEY_H
