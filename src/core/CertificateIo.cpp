//===- CertificateIo.cpp - Serializing certificates for certcheck ---------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "core/CertificateIo.h"

#include "cert/CertFormat.h"
#include "support/Compress.h"

using namespace leapfrog;
using namespace leapfrog::core;

namespace {

/// DIMACS rendering: variable v (0-based) is v+1, negated literals are
/// negative — the convention cert/CertFormat.h fixes.
void appendClause(std::string &Out, const std::vector<smt::Lit> &C) {
  for (smt::Lit L : C) {
    Out += std::to_string(L.negated() ? -(L.var() + 1) : L.var() + 1);
    Out += ' ';
  }
  Out += '0';
}

void appendStream(std::string &Out, const smt::ProofStream &S,
                  size_t Index) {
  Out += "stream " + std::to_string(Index) + " " +
         std::to_string(S.Events.size()) + "\n";
  for (const smt::ProofEvent &E : S.Events) {
    switch (E.K) {
    case smt::ProofEvent::Kind::Input:
      Out += "i ";
      appendClause(Out, E.Lits);
      break;
    case smt::ProofEvent::Kind::Lemma:
      Out += "l ";
      appendClause(Out, E.Lits);
      break;
    case smt::ProofEvent::Kind::Delete:
      Out += "d ";
      appendClause(Out, E.Lits);
      break;
    case smt::ProofEvent::Kind::GoalBegin:
      // Activation variables shift to 1-based; -1 (one-shot) becomes 0.
      Out += "g " + std::to_string(E.GoalId) + " " +
             std::to_string(E.ActVar + 1);
      break;
    case smt::ProofEvent::Kind::GoalEndUnsat:
      Out += "u " + std::to_string(E.GoalId) + " ";
      appendClause(Out, E.Lits);
      break;
    case smt::ProofEvent::Kind::GoalEndSat:
      Out += "e " + std::to_string(E.GoalId);
      break;
    case smt::ProofEvent::Kind::Restart:
      Out += "r";
      break;
    }
    Out += '\n';
  }
  Out += "endstream\n";
}

} // namespace

std::string core::serializeCertificate(const p4a::Automaton &Left,
                                       const p4a::Automaton &Right,
                                       const EquivalenceCertificate &Cert,
                                       const smt::ProofLog *Proof,
                                       const std::string &FingerprintHex) {
  std::string Out;
  std::string Fp = FingerprintHex.empty() ? "-" : FingerprintHex;

  Out += std::string(cert::CertMagic) + "\n";
  Out += "fingerprint " + Fp + "\n";
  Out += "options leaps=" + std::string(Cert.UseLeaps ? "1" : "0") +
         " reach=" + std::string(Cert.UseReachability ? "1" : "0") + "\n";

  Out += "headers " + std::to_string(Left.numHeaders()) + " " +
         std::to_string(Right.numHeaders()) + "\n";
  for (size_t H = 0; H < Left.numHeaders(); ++H)
    Out += "hl " + std::to_string(H) + " " +
           std::to_string(Left.headerSize(p4a::HeaderId(H))) + "\n";
  for (size_t H = 0; H < Right.numHeaders(); ++H)
    Out += "hr " + std::to_string(H) + " " +
           std::to_string(Right.headerSize(p4a::HeaderId(H))) + "\n";

  logic::GuardedFormula SpecG{
      Cert.Spec.TP,
      Cert.Spec.Premise ? Cert.Spec.Premise : logic::Pure::mkTrue()};
  Out += "spec " + cert::escapeLine(SpecG.str(Left, Right)) + "\n";

  Out += "relation " + std::to_string(Cert.Relation.size()) + "\n";
  uint64_t RelHash = cert::fnv1a64("");
  for (const logic::GuardedFormula &G : Cert.Relation) {
    std::string Line = cert::escapeLine(G.str(Left, Right));
    RelHash = cert::fnv1a64(Line + "\n", RelHash);
    Out += "c " + Line + "\n";
  }
  Out += "relhash " + cert::hex64(RelHash) + "\n";

  size_t NStreams = Proof ? Proof->streamCount() : 0;
  Out += "streams " + std::to_string(NStreams) + "\n";
  for (size_t S = 0; S < NStreams; ++S)
    appendStream(Out, Proof->stream(S), S);

  Out += "trailer " + std::to_string(Cert.Relation.size()) + " " +
         std::to_string(NStreams) + " " + cert::hex64(RelHash) + " " + Fp +
         "\n";
  Out += std::string(cert::CertEndMark) + "\n";
  return Out;
}

std::string core::compressCertificate(const std::string &CertText) {
  return support::compress(CertText);
}
