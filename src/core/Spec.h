//===- Spec.h - Property specifications for the checker ---------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property specifications: the formula φ of Algorithm 1 and the initial
/// relation I it is checked against. Besides plain language equivalence
/// (Lemma 4.10's I), the §7.1 case studies instantiate I differently:
///
///   - *external filtering* qualifies acceptance with a store predicate —
///     a packet "counts" as accepted only if the final store satisfies the
///     filter (e.g. the Ethernet type is IPv4 or IPv6);
///   - *relational verification* replaces I entirely with a custom
///     relation between accepting stores (e.g. header correspondence).
///
/// All three modes feed Algorithm 1 unchanged; only the seed conjuncts of
/// the frontier differ (paper §4.2: "In Section 7, we consider
/// instantiations of I that can be used to verify different but related
/// properties").
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_CORE_SPEC_H
#define LEAPFROG_CORE_SPEC_H

#include "core/Reachability.h"
#include "logic/ConfRel.h"

#include <vector>

namespace leapfrog {
namespace core {

using logic::GuardedFormula;
using logic::PureRef;

/// How the initial relation treats acceptance.
enum class AcceptanceMode {
  /// Lemma 4.10: related pairs must be equally accepting.
  Standard,
  /// Acceptance is qualified by per-side store predicates (external
  /// filtering, §7.1): a side "accepts" only when its qualifier holds of
  /// the final store.
  Qualified,
  /// No built-in acceptance conjuncts; I is exactly ExtraInitial
  /// (relational verification, §7.1).
  Custom,
};

/// The property φ plus the initial relation I.
struct InitialSpec {
  /// Guard of φ — usually ⟨q1, 0⟩ / ⟨q2, 0⟩ for the two start states.
  logic::TemplatePair TP;
  /// Pure part of φ. Null/True = relate all initial stores (§4).
  PureRef Premise;
  AcceptanceMode Mode = AcceptanceMode::Standard;
  /// Qualified mode only: per-side acceptance predicates over the final
  /// store (pure formulas mentioning only that side's headers).
  PureRef LeftQualifier;
  PureRef RightQualifier;
  /// Conjuncts appended to I in every mode.
  std::vector<GuardedFormula> ExtraInitial;
};

/// Builds the conjuncts of I over the template-pair domain \p Pairs per
/// \p Spec's mode (Lemma 4.10 / Theorem 5.2 for Standard; the filtered-
/// acceptance generalization for Qualified; ExtraInitial alone for
/// Custom).
std::vector<GuardedFormula>
buildInitialConjuncts(const InitialSpec &Spec,
                      const std::vector<TemplatePair> &Pairs);

} // namespace core
} // namespace leapfrog

#endif // LEAPFROG_CORE_SPEC_H
