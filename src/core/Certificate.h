//===- Certificate.h - Replayable equivalence certificates ------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Leapfrog's headline feature is that equivalence proofs are *reusable
/// certificates* checked by the Coq kernel (§6.4). Our C++ analogue is the
/// EquivalenceCertificate: the complete conjunct set R produced by the
/// search, together with the property φ it certifies. replayCertificate()
/// re-validates, without trusting the search that produced R, that
///
///   (1) initiation — every conjunct of the (independently re-derived)
///       initial relation I is entailed by ⋀R, so related pairs are
///       equally accepting;
///   (2) consecution — for every ψ ∈ R, every formula in WP(ψ) is entailed
///       by ⋀R, so ⋀R is closed under (leap) steps;
///   (3) inclusion — φ ⊨ ⋀R.
///
/// Together these make ⋀R a symbolic bisimulation with leaps containing φ
/// (Definition 5.4 + Lemma 5.6), hence configurations relatable by φ are
/// language-equivalent. The replay checker trusts only the lowering chain
/// and the solver — the same TCB shape as the paper's plugin + SMT solver
/// (§6.4) — and notably does *not* trust the search: the test suite
/// demonstrates that replay with a sound solver rejects certificates
/// fabricated by an unsound one.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_CORE_CERTIFICATE_H
#define LEAPFROG_CORE_CERTIFICATE_H

#include "core/Spec.h"
#include "logic/ConfRel.h"
#include "smt/Solver.h"

#include <string>
#include <vector>

namespace leapfrog {
namespace core {

/// A self-contained proof object for one equivalence (or relational)
/// property of a pair of P4 automata.
struct EquivalenceCertificate {
  /// The certified property φ, including its initial-relation mode
  /// (external filtering / relational specs replay with the same I).
  InitialSpec Spec;
  /// The certified symbolic bisimulation with leaps, as conjuncts.
  std::vector<logic::GuardedFormula> Relation;
  /// Which optimizations the WP re-derivation must use; leaps change the
  /// shape of consecution obligations, so replay must match.
  bool UseLeaps = true;
  bool UseReachability = true;

  /// Human-readable rendering (for docs, debugging and golden tests).
  std::string str(const p4a::Automaton &Left,
                  const p4a::Automaton &Right) const;
};

/// Outcome of certificate replay.
struct ReplayResult {
  bool Valid = false;
  /// Empty when valid; otherwise which obligation failed, e.g.
  /// "consecution: WP of conjunct #3 source ⟨q1,0⟩/⟨q3,0⟩ not entailed".
  std::string FailureReason;
  size_t ObligationsChecked = 0;
};

/// Re-validates \p Cert against the automata from scratch (see file
/// comment). \p Solver defaults to smt::defaultSolver().
ReplayResult replayCertificate(const p4a::Automaton &Left,
                               const p4a::Automaton &Right,
                               const EquivalenceCertificate &Cert,
                               smt::SmtSolver *Solver = nullptr);

} // namespace core
} // namespace leapfrog

#endif // LEAPFROG_CORE_CERTIFICATE_H
