//===- WeakestPrecondition.cpp - Symbolic WP over P4 automata -------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "core/WeakestPrecondition.h"

using namespace leapfrog;
using namespace leapfrog::core;
using namespace leapfrog::logic;

BitExprRef core::symEvalExpr(const Ctx &C, Side S, const p4a::ExprRef &E,
                             const std::vector<BitExprRef> &Headers) {
  assert(E && "symbolic evaluation of null expression");
  switch (E->kind()) {
  case p4a::Expr::Kind::Header:
    assert(E->header() < Headers.size() && "header id out of range");
    return Headers[E->header()];
  case p4a::Expr::Kind::Literal:
    return BitExpr::mkLit(E->literal());
  case p4a::Expr::Kind::Slice:
    return mkSliceS(C, symEvalExpr(C, S, E->sliceOperand(), Headers),
                    E->sliceLo(), E->sliceHi());
  case p4a::Expr::Kind::Concat:
    return mkConcatS(C, symEvalExpr(C, S, E->concatLhs(), Headers),
                     symEvalExpr(C, S, E->concatRhs(), Headers));
  }
  assert(false && "unknown expression kind");
  return nullptr;
}

std::vector<BitExprRef> core::symExecOps(const Ctx &C, Side S,
                                         const p4a::Automaton &Aut,
                                         p4a::StateId Q,
                                         const BitExprRef &Input) {
  // The pre-store: each header maps to itself.
  std::vector<BitExprRef> Headers;
  Headers.reserve(Aut.numHeaders());
  for (p4a::HeaderId H = 0; H < Aut.numHeaders(); ++H)
    Headers.push_back(BitExpr::mkHdr(S, H));

  size_t Cursor = 0;
  for (const p4a::Op &O : Aut.state(Q).Ops) {
    if (O.K == p4a::Op::Kind::Extract) {
      size_t Sz = Aut.headerSize(O.Target);
      Headers[O.Target] = mkSliceS(C, Input, Cursor, Cursor + Sz - 1);
      Cursor += Sz;
      continue;
    }
    Headers[O.Target] = symEvalExpr(C, S, O.Value, Headers);
  }
  assert(Cursor == Aut.opBits(Q) &&
         "operation block consumed unexpected bit count");
  return Headers;
}

PureRef core::transitionCondition(const Ctx &C, Side S,
                                  const p4a::Automaton &Aut, p4a::StateId Q,
                                  const std::vector<BitExprRef> &Headers,
                                  p4a::StateRef Target) {
  const p4a::Transition &Tz = Aut.state(Q).Tz;
  if (Tz.IsGoto)
    return Tz.GotoTarget == Target ? Pure::mkTrue() : Pure::mkFalse();

  // Symbolic discriminant tuple over the post-store.
  std::vector<BitExprRef> Ds;
  Ds.reserve(Tz.Discriminants.size());
  for (const p4a::ExprRef &E : Tz.Discriminants)
    Ds.push_back(symEvalExpr(C, S, E, Headers));

  // Case i fires iff its patterns match and no earlier case matched.
  PureRef NoneBefore = Pure::mkTrue();
  PureRef Reached = Pure::mkFalse();
  for (const p4a::SelectCase &Case : Tz.Cases) {
    PureRef Matches = Pure::mkTrue();
    for (size_t I = 0; I < Case.Pats.size(); ++I) {
      const p4a::Pattern &P = Case.Pats[I];
      if (P.isWildcard())
        continue;
      Matches = Pure::mkAnd(
          Matches, Pure::mkEq(Ds[I], BitExpr::mkLit(*P.Exact)));
    }
    if (Case.Target == Target)
      Reached = Pure::mkOr(Reached, Pure::mkAnd(NoneBefore, Matches));
    NoneBefore = Pure::mkAnd(NoneBefore, Pure::mkNot(Matches));
  }
  // Fall-through: no case matched ⇒ reject (Definition 3.3).
  if (Target.isReject())
    Reached = Pure::mkOr(Reached, NoneBefore);
  return Reached;
}

namespace {

/// Per-side outcome of pushing one leap backwards.
struct SideWp {
  bool Compatible = false; ///< Can this side land on the goal template?
  PureRef Cond;            ///< Condition for landing there.
  SideSubst Subst;         ///< Post-state → pre-state substitution.
};

/// Identity substitution: buffer and headers map to themselves.
SideSubst identitySubst(const p4a::Automaton &Aut, Side S) {
  SideSubst Sub;
  Sub.Buf = BitExpr::mkBuf(S);
  Sub.Headers.reserve(Aut.numHeaders());
  for (p4a::HeaderId H = 0; H < Aut.numHeaders(); ++H)
    Sub.Headers.push_back(BitExpr::mkHdr(S, H));
  return Sub;
}

/// Computes one side's contribution for leaping k bits from \p Source
/// toward goal template \p GoalT. \p C is the context of the *source*
/// pair (buffer widths are the source's); \p X names the k packet bits.
SideWp sideWp(const Ctx &C, Side S, const p4a::Automaton &Aut,
              Template Source, Template GoalT, const BitExprRef &X,
              size_t K) {
  SideWp W;
  W.Cond = Pure::mkTrue();
  W.Subst = identitySubst(Aut, S);

  if (Source.Q.isTerminal()) {
    // Terminal sides collapse to ⟨reject, 0⟩, store untouched, buffer ε.
    if (!(GoalT == Template::reject()))
      return W;
    W.Compatible = true;
    W.Subst.Buf = BitExpr::mkLit(Bitvector());
    return W;
  }

  size_t D = core::templateDeficit(Aut, Source);
  assert(K <= D && "leap overshoots this side's transition");

  if (K < D) {
    // Pure buffering: deterministic post-template ⟨q, n+k⟩.
    if (!(GoalT == Template{Source.Q, Source.N + K}))
      return W;
    W.Compatible = true;
    W.Subst.Buf = mkConcatS(C, BitExpr::mkBuf(S), X);
    return W;
  }

  // The buffer fills: blocks run on buf ++ X and the transition actuates.
  if (GoalT.N != 0)
    return W; // Post-transition configurations have empty buffers.
  BitExprRef Input = mkConcatS(C, BitExpr::mkBuf(S), X);
  std::vector<BitExprRef> Post = core::symExecOps(C, S, Aut, Source.Q.Id,
                                                  Input);
  PureRef Cond =
      core::transitionCondition(C, S, Aut, Source.Q.Id, Post, GoalT.Q);
  if (Cond->kind() == Pure::Kind::False)
    return W; // This state can never transition to the goal state.
  W.Compatible = true;
  W.Cond = Cond;
  W.Subst.Buf = BitExpr::mkLit(Bitvector());
  W.Subst.Headers = std::move(Post);
  return W;
}

} // namespace

std::vector<GuardedFormula> core::weakestPrecondition(
    const p4a::Automaton &Left, const p4a::Automaton &Right,
    const GuardedFormula &Goal, const std::vector<TemplatePair> &Sources,
    bool UseLeaps, size_t &FreshCounter) {
  std::vector<GuardedFormula> Out;
  for (TemplatePair Source : Sources) {
    size_t K = UseLeaps ? leapSize(Left, Right, Source) : 1;
    // Cheap compatibility pre-filter on deterministic sides.
    Ctx C{&Left, &Right, Source};
    BitExprRef X =
        BitExpr::mkVar("x" + std::to_string(FreshCounter), K);

    SideWp L = sideWp(C, Side::Left, Left, Source.L, Goal.TP.L, X, K);
    if (!L.Compatible)
      continue;
    SideWp R = sideWp(C, Side::Right, Right, Source.R, Goal.TP.R, X, K);
    if (!R.Compatible)
      continue;
    ++FreshCounter;

    PureRef Post = substitute(Goal.Phi, L.Subst, R.Subst);
    PureRef Phi =
        Pure::mkImplies(Pure::mkAnd(L.Cond, R.Cond), Post);
    Out.push_back(GuardedFormula{Source, Phi});
  }
  return Out;
}
