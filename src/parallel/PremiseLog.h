//===- PremiseLog.h - Append-only premise store for pipelined epochs -*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The relation R as an append-only log whose published prefix is safe to
/// read from worker threads while the merge thread appends to the tail.
/// This is the data structure that makes pipelined epochs possible: with
/// skip-ahead merge enabled, epoch N+1's parallel decide reads premises
/// R[0..FrozenR) concurrently with epoch N's merge pushing new conjuncts,
/// and a plain std::vector would relocate the prefix out from under the
/// readers on growth.
///
/// Layout: fixed-capacity blocks that never reallocate once created, plus
/// a block table reserved far beyond any realistic run. Appends touch only
/// the tail block's free slot (and, every BlockSize appends, push one
/// pointer into the table's spare capacity) — no byte an earlier index
/// resolves to is ever written again, so readers of indices below a
/// published bound race with nothing.
///
/// Publication protocol (the caller's obligation): a reader thread may
/// access only indices below a bound it received through a
/// synchronizes-with edge ordered after the writes — in the engine, the
/// WorkerPool's epoch-launch mutex handshake publishes everything below
/// the chunk's FrozenR. The quiesce callback passed to push_back() runs
/// before the one structural mutation readers could observe (a block-table
/// reallocation); the engine passes "wait out the in-flight epoch", and at
/// BlockSize * table-capacity = half a million conjuncts it is a
/// correctness backstop, not a path any benchmark reaches.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_PARALLEL_PREMISELOG_H
#define LEAPFROG_PARALLEL_PREMISELOG_H

#include "logic/ConfRel.h"

#include <memory>
#include <vector>

namespace leapfrog {
namespace parallel {

/// Append-only, stable-prefix store of guarded conjuncts; see file comment.
class PremiseLog {
public:
  /// Conjuncts per block. Blocks reserve exactly this much up front and
  /// never grow past it, so no element relocates after construction.
  static constexpr size_t BlockSize = 512;
  /// Block-table slots reserved at construction; appending block number
  /// TableReserve + 1 is what forces a quiesce.
  static constexpr size_t TableReserve = 1024;

  PremiseLog() { Blocks.reserve(TableReserve); }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }

  const logic::GuardedFormula &operator[](size_t I) const {
    return (*Blocks[I / BlockSize])[I % BlockSize];
  }

  /// Appends \p G. \p Quiesce is invoked (possibly zero times) before any
  /// mutation concurrent readers could observe — the caller must make it
  /// drain every reader thread (and re-publish before they resume).
  template <typename QuiesceFn>
  void push_back(logic::GuardedFormula G, QuiesceFn &&Quiesce) {
    if (Count == Blocks.size() * BlockSize) {
      if (Blocks.size() == Blocks.capacity())
        Quiesce();
      Blocks.push_back(
          std::make_unique<std::vector<logic::GuardedFormula>>());
      Blocks.back()->reserve(BlockSize);
    }
    Blocks[Count / BlockSize]->push_back(std::move(G));
    ++Count;
  }

  /// Copies the log out as a contiguous vector (certificate relation,
  /// stats epilogues). Caller-side only; not safe concurrent with appends.
  std::vector<logic::GuardedFormula> snapshot() const {
    std::vector<logic::GuardedFormula> Out;
    Out.reserve(Count);
    for (size_t I = 0; I < Count; ++I)
      Out.push_back((*this)[I]);
    return Out;
  }

private:
  /// unique_ptr per block: the table may grow (within its reservation, or
  /// past it after a quiesce) without moving a single conjunct.
  std::vector<std::unique_ptr<std::vector<logic::GuardedFormula>>> Blocks;
  size_t Count = 0;
};

} // namespace parallel
} // namespace leapfrog

#endif // LEAPFROG_PARALLEL_PREMISELOG_H
