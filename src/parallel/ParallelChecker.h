//===- ParallelChecker.h - Work-sharded checker runtime ---------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel frontier engine: Algorithm 1's worklist loop re-expressed
/// as a sequence of *epochs*, each an embarrassingly parallel batch of
/// entailment checks against a frozen premise generation ⋀R, followed by
/// a sequential merge that replays the batch in frontier order. The merge
/// is what makes the engine exact: it re-derives precisely the Skip and
/// Extend decisions the sequential checker would have taken, so verdicts,
/// traces, the final relation — and therefore certificates — are
/// bit-identical to `core::checkWithSpec` regardless of thread count or
/// schedule. See the implementation prologue for the two-case argument
/// (entailment monotonicity + same-guard re-checks).
///
/// Entry is through core::checkWithSpec with CheckOptions::Jobs > 1; this
/// header exists so the dispatch in core/Checker.cpp stays one line and
/// tests can drive the engine directly.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_PARALLEL_PARALLELCHECKER_H
#define LEAPFROG_PARALLEL_PARALLELCHECKER_H

#include "core/Checker.h"
#include "parallel/WorkerPool.h"

namespace leapfrog {
namespace parallel {

/// Reusable runtime state the parallel engine can keep warm across
/// checks: the per-worker backends (for external backends, each owns a
/// live solver process) and the parked thread pool. A long-lived
/// core::Engine passes the same instance to every check so request N+1
/// reuses the processes and threads request N already paid for; one-shot
/// callers pass nullptr and get the classic spawn-per-call behavior.
///
/// Invariants: the worker solvers must all have been spawned (via
/// SmtSolver::spawnWorker) from the primary backend the accompanying
/// CheckOptions::Solver points at — the engine repopulates the vector
/// whenever its size disagrees with Options.Jobs, and resets each
/// worker's statistics after absorbing them into the primary, so stats
/// are never double-counted across calls. Not thread-safe: one check at
/// a time per WarmRuntime, from the thread that owns it.
struct WarmRuntime {
  std::vector<std::unique_ptr<smt::SmtSolver>> WorkerSolvers;
  std::unique_ptr<WorkerPool> Pool;
};

/// Runs Algorithm 1 for \p Spec with Options.Jobs worker threads (plus
/// the calling thread, which seeds epochs, merges their results, and
/// discharges the refutation/done obligations). Produces a CheckResult
/// identical to the sequential engine's in every deterministic field:
/// verdict, FailureReason, trace, certificate, and all CheckStats except
/// SmtQueries (the parallel phase re-poses some queries the merge then
/// re-derives under a grown premise set) and the wall/solver times.
///
/// Preconditions: those of core::checkWithSpec, plus Options.Jobs >= 2.
/// A primary backend whose spawnWorker() cannot yield per-worker
/// instances is handed back to the sequential loop (Jobs = 1) — the one
/// engine that can pose every query to a single shared instance.
///
/// \p Warm, when non-null, carries worker backends and the thread pool
/// across calls (see WarmRuntime); nullptr spawns and tears down both
/// within this call.
core::CheckResult checkWithSpecParallel(const p4a::Automaton &Left,
                                        const p4a::Automaton &Right,
                                        const core::InitialSpec &Spec,
                                        const core::CheckOptions &Options,
                                        WarmRuntime *Warm = nullptr);

} // namespace parallel
} // namespace leapfrog

#endif // LEAPFROG_PARALLEL_PARALLELCHECKER_H
