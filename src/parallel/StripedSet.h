//===- StripedSet.h - Striped concurrent visited set ------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The frontier's visited set, safe for concurrent insert/contains: keys
/// are sharded across independently locked stripes by their hash, so
/// writers on different stripes never contend. Keys are the *exact*
/// frontier dedup keys of core/FrontierKey.h — striping only picks a
/// lock, membership is decided by full string equality, so the PR 3
/// collision class (hash-keyed dedup swallowing refutation chains) cannot
/// recur here.
///
/// Today the parallel engine inserts only from its merge thread — the
/// insertion *order* is what keeps duplicate resolution, and therefore
/// the stored variable names later entailments align on, identical to
/// the sequential checker — so the striping is not yet contended in
/// production: it is the concurrency-safe container the ROADMAP's
/// sharded-push work lands on, priced at one uncontended lock per push
/// (noise next to the canonicalize+render that computes the key).
/// ParallelTest exercises the concurrent paths so they are ready when a
/// parallel pusher arrives.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_PARALLEL_STRIPEDSET_H
#define LEAPFROG_PARALLEL_STRIPEDSET_H

#include <functional>
#include <mutex>
#include <string>
#include <unordered_set>

namespace leapfrog {
namespace parallel {

class StripedSet {
  static constexpr size_t NumStripes = 64; // Power of two: mask, no modulo.

public:
  /// Inserts \p Key; returns true iff it was not already present.
  bool insert(const std::string &Key) {
    Stripe &S = stripeFor(Key);
    std::lock_guard<std::mutex> Lock(S.M);
    return S.Keys.insert(Key).second;
  }

  bool contains(const std::string &Key) const {
    const Stripe &S = stripeFor(Key);
    std::lock_guard<std::mutex> Lock(S.M);
    return S.Keys.count(Key) != 0;
  }

  size_t size() const {
    size_t N = 0;
    for (const Stripe &S : Stripes) {
      std::lock_guard<std::mutex> Lock(S.M);
      N += S.Keys.size();
    }
    return N;
  }

private:
  struct Stripe {
    mutable std::mutex M;
    std::unordered_set<std::string> Keys;
  };

  Stripe &stripeFor(const std::string &Key) {
    return Stripes[std::hash<std::string>()(Key) & (NumStripes - 1)];
  }
  const Stripe &stripeFor(const std::string &Key) const {
    return Stripes[std::hash<std::string>()(Key) & (NumStripes - 1)];
  }

  Stripe Stripes[NumStripes];
};

} // namespace parallel
} // namespace leapfrog

#endif // LEAPFROG_PARALLEL_STRIPEDSET_H
