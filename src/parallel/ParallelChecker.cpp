//===- ParallelChecker.cpp - Work-sharded checker runtime -----------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Algorithm 1 as an epoch pipeline. The sequential checker pops one
// conjunct ψ at a time and decides ⋀R ⊨ ψ against the *current* R; the
// FIFO discipline means every conjunct of one frontier "generation" is
// popped before any child pushed while processing it. This engine makes
// that generation structure explicit:
//
//   1. Parallel phase — freeze R (the premise generation) and decide
//      ⋀R|guard ⊨ ψ for the whole batch concurrently. Tasks are dealt to
//      per-worker work-stealing deques; each worker owns an independent
//      backend (SmtSolver::spawnWorker) and one incremental session per
//      template pair (SessionLimits applied per worker), so no solver
//      state is shared across threads — the Solver.h ownership contract.
//      With CheckOptions::GoalBatch > 1, same-guard goals travel as one
//      task unit and share a single activation scope through
//      IncrementalSession::checkSatBatch — fewer physical round-trips,
//      identical per-goal answers (the batch contract).
//
//   2. Merge phase — replay the batch in frontier order on the calling
//      thread and re-derive the sequential decisions:
//        - parallel answer "entailed": the sequential premise set at this
//          pop is a superset of the frozen one, and entailment is
//          monotone in premises, so the sequential decision is Skip too;
//        - parallel answer "not entailed" and no same-guard conjunct was
//          extended since this chunk's freeze: the premise sets *relevant
//          to ψ* (entailment only consults premises sharing ψ's guard —
//          see logic/Lower.h stage 2) are equal, so the decision is
//          Extend;
//        - otherwise the relevant premise set grew since the freeze and
//          the frozen answer proves nothing: re-derive against the live
//          R through a merge-side session. Only this case re-queries.
//      Extends append to R, run the early-refutation check, and push
//      weakest preconditions — all in the sequential order, so fresh-
//      variable minting, frontier deduplication and the recorded trace
//      evolve exactly as in core::checkWithSpec.
//
// Skip-ahead merge (CheckOptions::Pipeline, the default): the merge of
// chunk N runs *concurrently* with the parallel decide of chunk N+1,
// whose premises were frozen before the merge started appending. The
// merge rules above never assumed the freeze point was the merge start —
// only that a frozen answer is trusted iff no same-guard conjunct was
// extended at or after the freeze — so the replay stays exact; the
// staleness test just compares against the chunk's own freeze point
// (LastExtendIdx below). Three mechanics make the overlap sound:
//   - R is a PremiseLog: appends never move the published prefix, so
//     workers read R[0..FrozenR) while the merge appends past it; the
//     pool's launch handshake publishes everything below FrozenR.
//   - Merge-side re-queries run on sessions owned by the *calling*
//     thread against the primary backend — the affinity worker's session
//     may be busy deciding chunk N+1.
//   - Proof capture forces barrier mode: adopting worker streams requires
//     quiescent workers at every refutation exit, and pipelining buys
//     nothing when every UNSAT must also stream a proof slice.
//
// The answers themselves are schedule-independent because the solver is
// sound and complete: which worker answers a query, and what learned
// clauses its session happens to hold, can change the *time* to an
// answer, never the answer. Hence: bit-identical Skip/Extend streams,
// relation, verdict and certificate for any job count, chunk size,
// batching factor or pipelining mode — the property the ParallelTest and
// SchedulerTest differential batteries lock in over the whole registry.
//
//===----------------------------------------------------------------------===//

#include "parallel/ParallelChecker.h"

#include "core/FrontierKey.h"
#include "core/WeakestPrecondition.h"
#include "logic/Lower.h"
#include "obs/Clock.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "p4a/Typing.h"
#include "parallel/PremiseLog.h"
#include "parallel/StripedSet.h"
#include "parallel/WorkerPool.h"
#include "smt/ProofLog.h"

#include <atomic>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

using namespace leapfrog;
using namespace leapfrog::core;
using namespace leapfrog::logic;
using namespace leapfrog::parallel;

namespace {

/// One frontier conjunct of the current epoch, annotated by the parallel
/// phase. Workers write disjoint elements (each task index is executed
/// exactly once); the merge reads them after waiting out their epoch.
struct EpochTask {
  GuardedFormula Psi;
  smt::BvFormulaRef Goal; ///< Lowered by the worker, reused by the merge.
  enum class Answer : uint8_t {
    NotEntailed,   ///< Not entailed by the frozen premise generation.
    Entailed,      ///< Entailed by the frozen premise generation.
    TriviallyTrue, ///< Goal lowered to ⊤; no query was posed.
  } A = Answer::NotEntailed;
};

/// One incremental session per template pair, lazily opened; NextConjunct
/// is the prefix of R already fed to it. Used per worker (parallel phase,
/// frozen R prefix) and on the merge side (live R, re-checks).
struct TpSessionMap {
  struct Entry {
    std::unique_ptr<smt::SmtSolver::IncrementalSession> Session;
    size_t NextConjunct = 0;
  };
  std::unordered_map<TemplatePair, Entry, TemplatePairHasher> Map;

  /// Feeds premises R[NextConjunct..UpTo) sharing \p TP's guard, then
  /// returns the session ready for goal queries.
  smt::SmtSolver::IncrementalSession &
  primed(smt::SmtSolver &Backend, const smt::SessionLimits &Limits,
         const p4a::Automaton &Left, const p4a::Automaton &Right,
         const PremiseLog &R, size_t UpTo, const TemplatePair &TP) {
    Entry &E = Map[TP];
    if (!E.Session)
      E.Session = Backend.openSession(Limits);
    for (; E.NextConjunct < UpTo; ++E.NextConjunct) {
      const GuardedFormula &P = R[E.NextConjunct];
      if (P.TP != TP)
        continue;
      E.Session->assertPremise(lowerPure(Left, Right, TP, P.Phi));
    }
    return *E.Session;
  }
};

/// A worker thread's private solving state: an independent backend plus
/// its session set. Constructed on the coordinating thread, used only by
/// the owning worker during epochs (the pool handshake publishes it),
/// read again by the coordinator after the last epoch for stats
/// absorption — and, in barrier mode only, borrowed for merge re-checks.
struct WorkerState {
  smt::SmtSolver *Solver = nullptr; ///< Owned by the solver store below.
  TpSessionMap Sessions;
};

} // namespace

CheckResult
parallel::checkWithSpecParallel(const p4a::Automaton &Left,
                                const p4a::Automaton &Right,
                                const InitialSpec &Spec,
                                const CheckOptions &Options,
                                WarmRuntime *Warm) {
  assert(p4a::isWellTyped(Left) && "left automaton is ill-typed");
  assert(p4a::isWellTyped(Right) && "right automaton is ill-typed");
  assert(Options.Jobs >= 2 && "parallel engine needs at least two workers");

  obs::ScopedSpan CheckSpan("check.run", "parallel",
                            obs::TraceArgs().add("jobs", Options.Jobs));
  obs::StopWatch Watch;
  smt::SmtSolver &Primary =
      Options.Solver ? *Options.Solver : smt::defaultSolver();
  uint64_t SolverMicrosBefore = Primary.stats().TotalMicros;

  // Per-worker backends: independent instances of the primary's
  // configuration. A backend that cannot spawn them (custom SmtSolver
  // subclasses) gets the sequential loop instead — it is the only
  // engine that can pose every query to the one provided instance.
  // With a WarmRuntime the spawned instances outlive this call (external
  // backends keep their solver processes running for the next request);
  // the store is repopulated only when its size disagrees with Jobs.
  std::vector<std::unique_ptr<smt::SmtSolver>> OwnedSolvers;
  std::vector<std::unique_ptr<smt::SmtSolver>> &SolverStore =
      Warm ? Warm->WorkerSolvers : OwnedSolvers;
  if (SolverStore.size() != Options.Jobs) {
    SolverStore.clear();
    for (size_t I = 0; I < Options.Jobs; ++I) {
      std::unique_ptr<smt::SmtSolver> S = Primary.spawnWorker();
      if (!S) {
        SolverStore.clear();
        CheckOptions Sequential = Options;
        Sequential.Jobs = 1;
        return core::checkWithSpec(Left, Right, Spec, Sequential);
      }
      SolverStore.push_back(std::move(S));
    }
  }
  std::vector<WorkerState> Workers(Options.Jobs);
  for (size_t I = 0; I < Options.Jobs; ++I)
    Workers[I].Solver = SolverStore[I].get();

  CheckResult Result;

  // Proof capture (Options.Certify): one log on the primary for its
  // one-shot queries (early refutation, done checks) plus one private log
  // per worker backend, so sessions opened during epochs stream per-goal
  // DRUP slices with no cross-thread sharing. Finish() — which every
  // return path below runs — adopts the worker logs into Result.Proof in
  // worker-index order and detaches everything, re-deriving a sequential
  // proof artifact: the stream *order* is deterministic, and each stream
  // is a self-contained slice sequence however stealing moved its goals.
  std::vector<std::unique_ptr<smt::ProofLog>> WorkerLogs;
  bool Capturing = false;
  if (Options.Certify) {
    Result.Proof = std::make_shared<smt::ProofLog>();
    bool Attached = Primary.attachProofLog(Result.Proof.get());
    for (size_t I = 0; Attached && I < Workers.size(); ++I) {
      WorkerLogs.push_back(std::make_unique<smt::ProofLog>());
      Attached = Workers[I].Solver->attachProofLog(WorkerLogs.back().get());
    }
    if (!Attached) {
      Primary.detachProofLog();
      for (WorkerState &W : Workers)
        W.Solver->detachProofLog();
      Result.Proof.reset();
      Result.V = Verdict::BadRequest;
      Result.FailureReason =
          "certification requested, but the solver backend cannot capture "
          "proof streams (see smt::SmtSolver::attachProofLog); use the "
          "bitblast backend, or crosscheck for external solvers";
      return Result;
    }
    Capturing = true;
  }

  CheckStats &St = Result.Stats;
  St.TemplatesLeft = allTemplates(Left).size();
  St.TemplatesRight = allTemplates(Right).size();

  std::vector<TemplatePair> Pairs =
      Options.UseReachability
          ? computeReach(Left, Right, Spec.TP, Options.UseLeaps)
          : allPairs(Left, Right);
  St.ReachPairs = Pairs.size();

  // R as an append-only log: stable prefixes are what let a pipelined
  // epoch read frozen premises while the merge appends (see PremiseLog.h).
  PremiseLog R;
  size_t FreshCounter = 0;
  PureRef Premise = Spec.Premise ? Spec.Premise : Pure::mkTrue();

  // The frontier, epoch-structured: Batch is the generation being
  // decided, Next accumulates its children (the following generation) in
  // sequential push order. Seen is the striped visited set over the
  // exact dedup keys; inserts happen only on the merge thread, in
  // sequential order, so duplicate resolution — and with it the variable
  // names later entailments align on — matches core::checkWithSpec.
  StripedSet Seen;
  std::vector<GuardedFormula> NextT;
  size_t RemainingInBatch = 0;
  auto Push = [&](GuardedFormula G) {
    if (G.Phi->kind() == Pure::Kind::True)
      return; // Trivial conjunct: entailed by anything.
    if (!Seen.insert(core::detail::frontierKey(G)))
      return;
    NextT.push_back(std::move(G));
    St.PeakFrontier =
        std::max(St.PeakFrontier, RemainingInBatch + NextT.size());
  };
  for (GuardedFormula &G : buildInitialConjuncts(Spec, Pairs))
    Push(std::move(G));

  // Entailment queries posed by the parallel phase; folded into
  // Stats.SmtQueries once at the end. Relaxed is enough — the value is
  // only read after the pool's epoch completion.
  std::atomic<uint64_t> ParallelQueries{0};

  // Every return path reports aggregate stats: the workers' backend
  // stats are absorbed into the primary's, and SolverMicros therefore
  // sums solver time *across threads* (it can exceed WallMicros — that
  // surplus is exactly the parallelism). An epoch still in flight (early
  // returns out of a pipelined merge) is waited out first — its tasks
  // reference this frame, and its stats belong to this check.
  WorkerPool *PoolPtr = nullptr;
  auto Finish = [&] {
    if (PoolPtr)
      PoolPtr->wait();
    if (Capturing) {
      for (size_t I = 0; I < Workers.size(); ++I) {
        Result.Proof->adopt(*WorkerLogs[I]);
        Workers[I].Solver->detachProofLog();
      }
      Primary.detachProofLog();
    }
    for (WorkerState &W : Workers) {
      Primary.absorbStats(W.Solver->stats());
      // Warm workers survive into the next check; zeroing after
      // absorption keeps every call's absorption disjoint (no
      // double-counting). Owned workers are destroyed right after, so
      // the reset is moot there.
      W.Solver->resetStats();
    }
    St.SmtQueries += ParallelQueries.load(std::memory_order_relaxed);
    St.WallMicros = Watch.elapsedMicros();
    St.SolverMicros = Primary.stats().TotalMicros - SolverMicrosBefore;
  };
  auto OverBudget = [&](const char *What) {
    Result.V = Verdict::ResourceLimit;
    Result.FailureReason =
        std::string(What) + " limit reached with " +
        std::to_string(RemainingInBatch + NextT.size()) +
        " frontier conjuncts outstanding";
    St.FinalConjuncts = R.size();
    Finish();
  };

  // The pool parks its threads between epochs — and, warm, between whole
  // checks, so a service request pays two condvar handshakes instead of
  // Jobs thread spawns.
  std::unique_ptr<WorkerPool> OwnedPool;
  if (Warm) {
    if (!Warm->Pool || Warm->Pool->workers() != Options.Jobs)
      Warm->Pool = std::make_unique<WorkerPool>(Options.Jobs);
  } else {
    OwnedPool = std::make_unique<WorkerPool>(Options.Jobs);
  }
  WorkerPool &Pool = Warm ? *Warm->Pool : *OwnedPool;
  PoolPtr = &Pool;
  std::vector<EpochTask> Batch;
  std::vector<std::vector<size_t>> Assignments(Pool.workers());

  // Epoch-pipeline metrics, flushed once per check on every exit path.
  // MergeStallMicros is merge time during which no epoch was in flight —
  // every worker idling at the barrier; OverlapMicros is merge time that
  // ran under a live epoch, i.e. the stall the skip-ahead merge bought
  // back; EpochWaitMicros is coordinator time blocked on epoch
  // completion. Stall + overlap = total merge time, so
  // overlap / (stall + overlap) is the pipelining effectiveness ratio
  // leapfrog-trace reports.
  uint64_t MergeStallMicros = 0;
  uint64_t OverlapMicros = 0;
  uint64_t EpochWaitMicros = 0;
  uint64_t EpochCount = 0;
  struct ParallelMetricsFlush {
    const CheckStats &St;
    uint64_t &MergeStallMicros;
    uint64_t &OverlapMicros;
    uint64_t &EpochWaitMicros;
    uint64_t &EpochCount;
    ~ParallelMetricsFlush() {
      obs::Registry &M = obs::metrics();
      // The shared check.* family (the sequential loop flushes the same
      // names), so dashboards see one counter set whatever the engine.
      static obs::Counter &Runs = M.counter("check.runs");
      static obs::Counter &Iterations = M.counter("check.iterations");
      static obs::Counter &Extends = M.counter("check.extends");
      static obs::Counter &Skips = M.counter("check.skips");
      static obs::Counter &Queries = M.counter("check.smt_queries");
      Runs.add(1);
      Iterations.add(St.Iterations);
      Extends.add(St.Extends);
      Skips.add(St.Skips);
      Queries.add(St.SmtQueries);
      static obs::Counter &Stall =
          M.counter("parallel.merge_stall_micros");
      static obs::Counter &Overlap = M.counter("parallel.overlap_micros");
      static obs::Counter &EpochWait =
          M.counter("parallel.epoch_wait_micros");
      static obs::Counter &Epochs = M.counter("parallel.epochs");
      Stall.add(MergeStallMicros);
      Overlap.add(OverlapMicros);
      EpochWait.add(EpochWaitMicros);
      Epochs.add(EpochCount);
    }
  } MetricsFlush{St, MergeStallMicros, OverlapMicros, EpochWaitMicros,
                 EpochCount};

  // R-index of the most recent Extend per guard, across the whole run.
  // A chunk's frozen NotEntailed answer is stale exactly when the guard
  // extended at or after that chunk's freeze point — in barrier mode the
  // freeze is the merge start (this degenerates to the old "extended
  // earlier in this epoch" set), in pipelined mode it is one merge
  // earlier.
  std::unordered_map<TemplatePair, size_t, TemplatePairHasher>
      LastExtendIdx;
  // Merge-side sessions against the primary backend, used for re-checks
  // while workers may be busy with the next chunk (pipelined mode).
  TpSessionMap MergeSessions;

  // Each frontier generation is processed in *chunks* of a few epochs
  // rather than as one giant epoch: the premise freeze then lags the
  // live R by at most one chunk (two when pipelined), so far fewer merge
  // items see a same-guard extension between freeze and replay — the
  // only case that must re-query. Chunks change how often the barrier
  // runs, never what is decided: each chunk is its own
  // freeze/decide/merge cycle with the exactness argument applied
  // verbatim. Sized so every worker gets a handful of tasks per epoch
  // even after uneven stealing; CheckOptions::Chunk overrides for
  // scheduler-adversarial testing.
  const size_t ChunkSize =
      Options.Chunk ? Options.Chunk
                    : std::max<size_t>(32, Options.Jobs * 8);

  // Skip-ahead merge on/off. Proof capture forces barrier mode (see the
  // file prologue); everything else defaults to pipelined.
  const bool Pipelined = Options.Pipeline && !Capturing;

  // Task units for the in-flight epoch: each unit is a same-guard run of
  // Batch indices, at most GoalBatch long; the pool's task index selects
  // a unit. Rebuilt by every launch — legal because launches only happen
  // with no epoch in flight.
  std::vector<std::vector<size_t>> Units;
  const size_t GoalBatch = std::max<size_t>(1, Options.GoalBatch);

  // Seeds the pool with [Start, End): groups the chunk's tasks by guard
  // in first-appearance order, splits each group into units of at most
  // GoalBatch, and deals every unit to its guard's affinity worker —
  // worker hash(TP) mod P, every epoch of the run. Entailment consults
  // only same-guard premises, so affinity means one worker's session —
  // not all of them — pays the bit-blast of each guard's premise set,
  // and that session's learned clauses stay hot for the guard's whole
  // conjunct stream. Stealing can still move a unit (and force the thief
  // to prime the guard's premises too); that is load balance bought at
  // the price of one extra premise copy, and it never changes an answer.
  auto LaunchChunk = [&](size_t Start, size_t End, size_t FrozenR) {
    Units.clear();
    {
      std::unordered_map<TemplatePair, size_t, TemplatePairHasher> Open;
      for (size_t T = Start; T < End; ++T) {
        const TemplatePair &TP = Batch[T].Psi.TP;
        auto It = Open.find(TP);
        if (It == Open.end() || Units[It->second].size() >= GoalBatch) {
          Units.emplace_back();
          Open[TP] = Units.size() - 1;
          It = Open.find(TP);
        }
        Units[It->second].push_back(T);
      }
    }
    for (auto &A : Assignments)
      A.clear();
    for (size_t U = 0; U < Units.size(); ++U)
      Assignments[TemplatePairHasher()(Batch[Units[U].front()].Psi.TP) %
                  Pool.workers()]
          .push_back(U);

    // Parallel phase. Premises below FrozenR are immutable and published
    // by the launch handshake; each task writes only its own Batch
    // elements; waiting out the epoch publishes all of it back.
    ++EpochCount;
    Pool.launchEpoch(Assignments, [&, FrozenR](size_t WorkerId,
                                               size_t UnitIdx) {
      // Name each pool thread's Perfetto track once; solver.query spans
      // recorded on this thread then land on the worker's own track.
      if (obs::traceSink()) {
        static thread_local bool TrackNamed = false;
        if (!TrackNamed) {
          obs::nameCurrentThread("worker-" + std::to_string(WorkerId));
          TrackNamed = true;
        }
      }
      const std::vector<size_t> &Unit = Units[UnitIdx];
      std::vector<size_t> Need;
      Need.reserve(Unit.size());
      for (size_t TaskIdx : Unit) {
        EpochTask &T = Batch[TaskIdx];
        T.Goal = lowerPure(Left, Right, T.Psi.TP, T.Psi.Phi);
        if (T.Goal->kind() == smt::BvFormula::Kind::True)
          T.A = EpochTask::Answer::TriviallyTrue;
        else
          Need.push_back(TaskIdx);
      }
      if (Need.empty())
        return;
      WorkerState &W = Workers[WorkerId];
      smt::SmtSolver::IncrementalSession &S =
          W.Sessions.primed(*W.Solver, Options.Limits, Left, Right, R,
                            FrozenR, Batch[Need.front()].Psi.TP);
      ParallelQueries.fetch_add(Need.size(), std::memory_order_relaxed);
      if (Need.size() == 1) {
        EpochTask &T = Batch[Need.front()];
        T.A = S.isEntailed(T.Goal) ? EpochTask::Answer::Entailed
                                   : EpochTask::Answer::NotEntailed;
        return;
      }
      // Same-guard unit: one activation scope, several goals per
      // round-trip. The batch contract (Solver.h) pins each answer to
      // what the individual query would have said.
      std::vector<smt::BvFormulaRef> Negated;
      Negated.reserve(Need.size());
      for (size_t TaskIdx : Need)
        Negated.push_back(smt::BvFormula::mkNot(Batch[TaskIdx].Goal));
      std::vector<smt::SatResult> Out;
      S.checkSatBatch(Negated, Out);
      for (size_t K = 0; K < Need.size(); ++K)
        Batch[Need[K]].A = Out[K] == smt::SatResult::Unsat
                               ? EpochTask::Answer::Entailed
                               : EpochTask::Answer::NotEntailed;
    });
  };

  // Merge phase: sequential replay of [Start, End) in frontier order.
  // Returns false when the run ended inside (budget trip or refutation;
  // Result and stats are already filled, Finish already ran).
  auto MergeChunk = [&](size_t Start, size_t End, size_t FrozenR) -> bool {
    obs::ScopedSpan MergeSpan("epoch.merge", "parallel");
    for (size_t I = Start; I < End; ++I) {
      // The sequential loop trips its budgets *before* popping, so the
      // current conjunct still counts as outstanding in the budget
      // message; it leaves the frontier once the checks pass.
      RemainingInBatch = Batch.size() - I;
      if (++St.Iterations > Options.MaxIterations) {
        OverBudget("iteration");
        return false;
      }
      if (Options.MaxWallMicros != 0 && (St.Iterations & 0xf) == 0 &&
          Watch.elapsedMicros() > Options.MaxWallMicros) {
        OverBudget("wall-clock");
        return false;
      }
      RemainingInBatch = Batch.size() - I - 1;
      EpochTask &T = Batch[I];

      bool Entailed;
      auto LastExtend = LastExtendIdx.find(T.Psi.TP);
      if (T.A != EpochTask::Answer::NotEntailed) {
        // Trivially true, or entailed by the frozen generation — a
        // subset of the premises the sequential checker would consult,
        // so Skip is its decision too (entailment is monotone).
        Entailed = true;
      } else if (LastExtend == LastExtendIdx.end() ||
                 LastExtend->second < FrozenR) {
        // No same-guard premise appeared since this chunk's freeze: the
        // frozen answer *is* the sequential answer.
        Entailed = false;
      } else if (Pipelined) {
        // The relevant premise set grew since the freeze; re-derive
        // against the live R. The affinity worker may be deciding the
        // next chunk right now, so the re-check runs on this thread's
        // own session against the primary backend — same premises, same
        // answer, no shared solver state.
        ++St.SmtQueries;
        Entailed = MergeSessions
                       .primed(Primary, Options.Limits, Left, Right, R,
                               R.size(), T.Psi.TP)
                       .isEntailed(T.Goal);
      } else {
        // Barrier mode: borrow the guard's affinity owner — the worker
        // whose session already holds this guard's premise CNF and
        // lemmas. Sound because the epoch barrier made that worker's
        // state coherent to this thread and no worker is running; and
        // advancing its session to the live R cannot overshoot a future
        // epoch, since R only grows between freezes, so every later
        // freeze point is at or beyond the live end and the session
        // keeps consuming exact premise prefixes.
        WorkerState &Owner =
            Workers[TemplatePairHasher()(T.Psi.TP) % Workers.size()];
        ++St.SmtQueries;
        Entailed = Owner.Sessions
                       .primed(*Owner.Solver, Options.Limits, Left,
                               Right, R, R.size(), T.Psi.TP)
                       .isEntailed(T.Goal);
      }

      if (Entailed) {
        ++St.Skips;
        if (Options.RecordTrace)
          Result.Trace.push_back(
              TraceStep{TraceStep::Kind::Skip, T.Psi, 0});
        continue;
      }

      ++St.Extends;
      LastExtendIdx[T.Psi.TP] = R.size();
      R.push_back(T.Psi, [&] { Pool.wait(); });

      // Early refutation, exactly as in the sequential loop (see
      // core/Checker.cpp for why this keeps the checker total).
      if (T.Psi.TP == Spec.TP) {
        smt::BvFormulaRef Query = lowerPure(
            Left, Right, Spec.TP, Pure::mkImplies(Premise, T.Psi.Phi));
        bool Valid = Query->kind() == smt::BvFormula::Kind::True;
        if (!Valid && Query->kind() != smt::BvFormula::Kind::False) {
          ++St.SmtQueries;
          Valid = Primary.isValid(Query);
        }
        if (!Valid) {
          Result.V = Verdict::NotEquivalent;
          Result.FailureReason = "refuted: phi does not entail conjunct " +
                                 T.Psi.str(Left, Right);
          St.FinalConjuncts = R.size();
          Finish();
          return false;
        }
      }

      std::vector<GuardedFormula> Wp = weakestPrecondition(
          Left, Right, T.Psi, Pairs, Options.UseLeaps, FreshCounter);
      if (Options.RecordTrace)
        Result.Trace.push_back(
            TraceStep{TraceStep::Kind::Extend, T.Psi, Wp.size()});
      for (GuardedFormula &G : Wp)
        Push(std::move(G));
    }
    return true;
  };

  // Wall budget, checked before committing a whole chunk of solver work:
  // the merge loop re-checks every 16 iterations exactly like the
  // sequential engine, but that alone would let a chunk's parallel phase
  // launch unmetered and overshoot the valve by up to ChunkSize queries.
  // Wall trips are inherently timing-dependent (the differential battery
  // budgets by iterations, which stay exact), so tripping a few items
  // earlier than the sequential loop would is fine — blowing the budget
  // by a chunk is not.
  auto WallTripped = [&] {
    return Options.MaxWallMicros != 0 &&
           Watch.elapsedMicros() > Options.MaxWallMicros;
  };

  static obs::Histogram &GenerationSize =
      obs::metrics().histogram("parallel.generation_size");
  while (!NextT.empty()) {
    GenerationSize.observe(NextT.size());
    Batch.clear();
    Batch.reserve(NextT.size());
    for (GuardedFormula &G : NextT)
      Batch.push_back(EpochTask{std::move(G), nullptr,
                                EpochTask::Answer::NotEntailed});
    NextT.clear();

    if (!Pipelined) {
      // Barrier mode: launch, wait, merge — one cycle per chunk, workers
      // idle during every merge.
      for (size_t ChunkStart = 0; ChunkStart < Batch.size();
           ChunkStart += ChunkSize) {
        const size_t ChunkEnd =
            std::min(ChunkStart + ChunkSize, Batch.size());
        if (WallTripped()) {
          RemainingInBatch = Batch.size() - ChunkStart;
          OverBudget("wall-clock");
          return Result;
        }
        const size_t FrozenR = R.size();
        {
          obs::ScopedSpan EpochSpan(
              "epoch.parallel", "parallel",
              obs::TraceArgs()
                  .add("tasks", uint64_t(ChunkEnd - ChunkStart))
                  .add("frozen_premises", uint64_t(FrozenR)));
          LaunchChunk(ChunkStart, ChunkEnd, FrozenR);
          Pool.wait();
        }
        obs::StopWatch MergeWatch;
        bool Ok = MergeChunk(ChunkStart, ChunkEnd, FrozenR);
        MergeStallMicros += MergeWatch.elapsedMicros();
        if (!Ok)
          return Result;
      }
    } else {
      // Pipelined mode: once chunk N's decide completes, chunk N+1 is
      // launched *before* chunk N's merge runs, so the workers decide
      // N+1 against the pre-merge freeze while this thread drains N.
      size_t CurStart = 0;
      size_t CurEnd = std::min(ChunkSize, Batch.size());
      if (WallTripped()) {
        RemainingInBatch = Batch.size();
        OverBudget("wall-clock");
        return Result;
      }
      size_t CurFrozen = R.size();
      LaunchChunk(CurStart, CurEnd, CurFrozen);
      for (;;) {
        {
          obs::ScopedSpan WaitSpan(
              "epoch.wait", "parallel",
              obs::TraceArgs().add("tasks",
                                   uint64_t(CurEnd - CurStart)));
          obs::ScopedMicros WaitTimer(EpochWaitMicros);
          Pool.wait();
        }

        // Skip-ahead launch: freeze at the *pre-merge* R. The wall valve
        // may veto the launch; the post-merge check below then surfaces
        // the stop exactly where barrier mode would have.
        const size_t NextStart = CurEnd;
        const size_t NextEnd =
            std::min(NextStart + ChunkSize, Batch.size());
        size_t NextFrozen = 0;
        bool NextLaunched = false;
        if (NextStart < Batch.size() && !WallTripped()) {
          NextFrozen = R.size();
          LaunchChunk(NextStart, NextEnd, NextFrozen);
          NextLaunched = true;
        }

        // Merge the current chunk, attributing its duration to overlap
        // (a live epoch was computing meanwhile — stall the pipeline
        // saved) or stall (workers sat idle, as in barrier mode).
        obs::Clock::TimePoint M0 = obs::Clock::now();
        bool Ok = MergeChunk(CurStart, CurEnd, CurFrozen);
        obs::Clock::TimePoint M1 = obs::Clock::now();
        uint64_t MergeMicros = obs::Clock::microsBetween(M0, M1);
        uint64_t Overlap = 0;
        if (NextLaunched) {
          if (Pool.epochInFlight()) {
            Overlap = MergeMicros;
          } else {
            obs::Clock::TimePoint E = Pool.lastEpochEnd();
            if (E > M0)
              Overlap = std::min(
                  obs::Clock::microsBetween(M0, E < M1 ? E : M1),
                  MergeMicros);
          }
        }
        OverlapMicros += Overlap;
        MergeStallMicros += MergeMicros - Overlap;
        if (!Ok)
          return Result;

        if (NextStart >= Batch.size())
          break;
        if (!NextLaunched) {
          RemainingInBatch = Batch.size() - NextStart;
          OverBudget("wall-clock");
          return Result;
        }
        CurStart = NextStart;
        CurEnd = NextEnd;
        CurFrozen = NextFrozen;
      }
    }
    RemainingInBatch = 0;
  }

  // Done: check φ ⊨ ⋀R (identical to the sequential epilogue).
  Result.V = Verdict::Equivalent;
  for (size_t CIdx = 0; CIdx < R.size(); ++CIdx) {
    const GuardedFormula &Conjunct = R[CIdx];
    if (Conjunct.TP != Spec.TP)
      continue;
    smt::BvFormulaRef Query = lowerPure(
        Left, Right, Spec.TP, Pure::mkImplies(Premise, Conjunct.Phi));
    bool Valid;
    if (Query->kind() == smt::BvFormula::Kind::True) {
      Valid = true;
    } else if (Query->kind() == smt::BvFormula::Kind::False) {
      Valid = false;
    } else {
      ++St.SmtQueries;
      Valid = Primary.isValid(Query);
    }
    if (!Valid) {
      Result.V = Verdict::NotEquivalent;
      Result.FailureReason =
          "final check failed: phi does not entail conjunct " +
          Conjunct.str(Left, Right);
      break;
    }
  }
  if (Options.RecordTrace)
    Result.Trace.push_back(
        TraceStep{TraceStep::Kind::Done,
                  GuardedFormula{Spec.TP, Pure::mkTrue()}, 0});

  St.FinalConjuncts = R.size();
  for (size_t CIdx = 0; CIdx < R.size(); ++CIdx)
    St.FormulaNodes += R[CIdx].Phi->size();

  if (Result.V == Verdict::Equivalent) {
    EquivalenceCertificate &Cert = Result.Certificate;
    Cert.Spec = Spec;
    Cert.Spec.Premise = Premise;
    Cert.Relation = R.snapshot();
    Cert.UseLeaps = Options.UseLeaps;
    Cert.UseReachability = Options.UseReachability;
  }

  Finish();
  return Result;
}
