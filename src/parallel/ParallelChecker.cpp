//===- ParallelChecker.cpp - Work-sharded checker runtime -----------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Algorithm 1 as an epoch pipeline. The sequential checker pops one
// conjunct ψ at a time and decides ⋀R ⊨ ψ against the *current* R; the
// FIFO discipline means every conjunct of one frontier "generation" is
// popped before any child pushed while processing it. This engine makes
// that generation structure explicit:
//
//   1. Parallel phase — freeze R (the premise generation) and decide
//      ⋀R|guard ⊨ ψ for the whole batch concurrently. Tasks are dealt to
//      per-worker work-stealing deques; each worker owns an independent
//      backend (SmtSolver::spawnWorker) and one incremental session per
//      template pair (SessionLimits applied per worker), so no solver
//      state is shared across threads — the Solver.h ownership contract.
//
//   2. Merge phase — replay the batch in frontier order on the calling
//      thread and re-derive the sequential decisions:
//        - parallel answer "entailed": the sequential premise set at this
//          pop is a superset of the frozen one, and entailment is
//          monotone in premises, so the sequential decision is Skip too;
//        - parallel answer "not entailed" and no same-guard conjunct was
//          extended earlier in this epoch: the premise sets *relevant to
//          ψ* (entailment only consults premises sharing ψ's guard — see
//          logic/Lower.h stage 2) are equal, so the decision is Extend;
//        - otherwise the relevant premise set grew since the freeze and
//          the frozen answer proves nothing: re-derive against the live
//          R through a merge-side session. Only this case re-queries.
//      Extends append to R, run the early-refutation check, and push
//      weakest preconditions — all in the sequential order, so fresh-
//      variable minting, frontier deduplication and the recorded trace
//      evolve exactly as in core::checkWithSpec.
//
// The answers themselves are schedule-independent because the solver is
// sound and complete: which worker answers a query, and what learned
// clauses its session happens to hold, can change the *time* to an
// answer, never the answer. Hence: bit-identical Skip/Extend streams,
// relation, verdict and certificate for any job count — the property the
// ParallelTest differential battery locks in over the whole registry.
//
//===----------------------------------------------------------------------===//

#include "parallel/ParallelChecker.h"

#include "core/FrontierKey.h"
#include "core/WeakestPrecondition.h"
#include "logic/Lower.h"
#include "obs/Clock.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "p4a/Typing.h"
#include "parallel/StripedSet.h"
#include "parallel/WorkerPool.h"
#include "smt/ProofLog.h"

#include <atomic>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

using namespace leapfrog;
using namespace leapfrog::core;
using namespace leapfrog::logic;
using namespace leapfrog::parallel;

namespace {

/// One frontier conjunct of the current epoch, annotated by the parallel
/// phase. Workers write disjoint elements (each task index is executed
/// exactly once); the merge reads them after the epoch barrier.
struct EpochTask {
  GuardedFormula Psi;
  smt::BvFormulaRef Goal; ///< Lowered by the worker, reused by the merge.
  enum class Answer : uint8_t {
    NotEntailed,   ///< Not entailed by the frozen premise generation.
    Entailed,      ///< Entailed by the frozen premise generation.
    TriviallyTrue, ///< Goal lowered to ⊤; no query was posed.
  } A = Answer::NotEntailed;
};

/// One incremental session per template pair, lazily opened; NextConjunct
/// is the prefix of R already fed to it. Used both per worker (parallel
/// phase, frozen R prefix) and on the merge side (live R, re-checks).
struct TpSessionMap {
  struct Entry {
    std::unique_ptr<smt::SmtSolver::IncrementalSession> Session;
    size_t NextConjunct = 0;
  };
  std::unordered_map<TemplatePair, Entry, TemplatePairHasher> Map;

  /// Feeds premises R[NextConjunct..UpTo) sharing \p TP's guard, then
  /// returns the session ready for goal queries.
  smt::SmtSolver::IncrementalSession &
  primed(smt::SmtSolver &Backend, const smt::SessionLimits &Limits,
         const p4a::Automaton &Left, const p4a::Automaton &Right,
         const std::vector<GuardedFormula> &R, size_t UpTo,
         const TemplatePair &TP) {
    Entry &E = Map[TP];
    if (!E.Session)
      E.Session = Backend.openSession(Limits);
    for (; E.NextConjunct < UpTo; ++E.NextConjunct) {
      const GuardedFormula &P = R[E.NextConjunct];
      if (P.TP != TP)
        continue;
      E.Session->assertPremise(lowerPure(Left, Right, TP, P.Phi));
    }
    return *E.Session;
  }
};

/// A worker thread's private solving state: an independent backend plus
/// its session set. Constructed on the coordinating thread, used only by
/// the owning worker during epochs (the pool barrier publishes it), read
/// again by the coordinator after the last epoch for stats absorption.
struct WorkerState {
  smt::SmtSolver *Solver = nullptr; ///< Owned by the solver store below.
  TpSessionMap Sessions;
};

} // namespace

CheckResult
parallel::checkWithSpecParallel(const p4a::Automaton &Left,
                                const p4a::Automaton &Right,
                                const InitialSpec &Spec,
                                const CheckOptions &Options,
                                WarmRuntime *Warm) {
  assert(p4a::isWellTyped(Left) && "left automaton is ill-typed");
  assert(p4a::isWellTyped(Right) && "right automaton is ill-typed");
  assert(Options.Jobs >= 2 && "parallel engine needs at least two workers");

  obs::ScopedSpan CheckSpan("check.run", "parallel",
                            obs::TraceArgs().add("jobs", Options.Jobs));
  obs::StopWatch Watch;
  smt::SmtSolver &Primary =
      Options.Solver ? *Options.Solver : smt::defaultSolver();
  uint64_t SolverMicrosBefore = Primary.stats().TotalMicros;

  // Per-worker backends: independent instances of the primary's
  // configuration. A backend that cannot spawn them (custom SmtSolver
  // subclasses) gets the sequential loop instead — it is the only
  // engine that can pose every query to the one provided instance.
  // With a WarmRuntime the spawned instances outlive this call (external
  // backends keep their solver processes running for the next request);
  // the store is repopulated only when its size disagrees with Jobs.
  std::vector<std::unique_ptr<smt::SmtSolver>> OwnedSolvers;
  std::vector<std::unique_ptr<smt::SmtSolver>> &SolverStore =
      Warm ? Warm->WorkerSolvers : OwnedSolvers;
  if (SolverStore.size() != Options.Jobs) {
    SolverStore.clear();
    for (size_t I = 0; I < Options.Jobs; ++I) {
      std::unique_ptr<smt::SmtSolver> S = Primary.spawnWorker();
      if (!S) {
        SolverStore.clear();
        CheckOptions Sequential = Options;
        Sequential.Jobs = 1;
        return core::checkWithSpec(Left, Right, Spec, Sequential);
      }
      SolverStore.push_back(std::move(S));
    }
  }
  std::vector<WorkerState> Workers(Options.Jobs);
  for (size_t I = 0; I < Options.Jobs; ++I)
    Workers[I].Solver = SolverStore[I].get();

  CheckResult Result;

  // Proof capture (Options.Certify): one log on the primary for its
  // one-shot queries (early refutation, done checks) plus one private log
  // per worker backend, so sessions opened during epochs stream per-goal
  // DRUP slices with no cross-thread sharing. Finish() — which every
  // return path below runs — adopts the worker logs into Result.Proof in
  // worker-index order and detaches everything, re-deriving a sequential
  // proof artifact: the stream *order* is deterministic, and each stream
  // is a self-contained slice sequence however stealing moved its goals.
  std::vector<std::unique_ptr<smt::ProofLog>> WorkerLogs;
  bool Capturing = false;
  if (Options.Certify) {
    Result.Proof = std::make_shared<smt::ProofLog>();
    bool Attached = Primary.attachProofLog(Result.Proof.get());
    for (size_t I = 0; Attached && I < Workers.size(); ++I) {
      WorkerLogs.push_back(std::make_unique<smt::ProofLog>());
      Attached = Workers[I].Solver->attachProofLog(WorkerLogs.back().get());
    }
    if (!Attached) {
      Primary.detachProofLog();
      for (WorkerState &W : Workers)
        W.Solver->detachProofLog();
      Result.Proof.reset();
      Result.V = Verdict::BadRequest;
      Result.FailureReason =
          "certification requested, but the solver backend cannot capture "
          "proof streams (see smt::SmtSolver::attachProofLog); use the "
          "bitblast backend, or crosscheck for external solvers";
      return Result;
    }
    Capturing = true;
  }

  CheckStats &St = Result.Stats;
  St.TemplatesLeft = allTemplates(Left).size();
  St.TemplatesRight = allTemplates(Right).size();

  std::vector<TemplatePair> Pairs =
      Options.UseReachability
          ? computeReach(Left, Right, Spec.TP, Options.UseLeaps)
          : allPairs(Left, Right);
  St.ReachPairs = Pairs.size();

  std::vector<GuardedFormula> R;
  size_t FreshCounter = 0;
  PureRef Premise = Spec.Premise ? Spec.Premise : Pure::mkTrue();

  // The frontier, epoch-structured: Batch is the generation being
  // decided, Next accumulates its children (the following generation) in
  // sequential push order. Seen is the striped visited set over the
  // exact dedup keys; inserts happen only on the merge thread, in
  // sequential order, so duplicate resolution — and with it the variable
  // names later entailments align on — matches core::checkWithSpec.
  StripedSet Seen;
  std::vector<GuardedFormula> NextT;
  size_t RemainingInBatch = 0;
  auto Push = [&](GuardedFormula G) {
    if (G.Phi->kind() == Pure::Kind::True)
      return; // Trivial conjunct: entailed by anything.
    if (!Seen.insert(core::detail::frontierKey(G)))
      return;
    NextT.push_back(std::move(G));
    St.PeakFrontier =
        std::max(St.PeakFrontier, RemainingInBatch + NextT.size());
  };
  for (GuardedFormula &G : buildInitialConjuncts(Spec, Pairs))
    Push(std::move(G));

  // Entailment queries posed by the parallel phase; folded into
  // Stats.SmtQueries once at the end. Relaxed is enough — the value is
  // only read after the pool barrier.
  std::atomic<uint64_t> ParallelQueries{0};

  // Every return path reports aggregate stats: the workers' backend
  // stats are absorbed into the primary's, and SolverMicros therefore
  // sums solver time *across threads* (it can exceed WallMicros — that
  // surplus is exactly the parallelism).
  auto Finish = [&] {
    if (Capturing) {
      for (size_t I = 0; I < Workers.size(); ++I) {
        Result.Proof->adopt(*WorkerLogs[I]);
        Workers[I].Solver->detachProofLog();
      }
      Primary.detachProofLog();
    }
    for (WorkerState &W : Workers) {
      Primary.absorbStats(W.Solver->stats());
      // Warm workers survive into the next check; zeroing after
      // absorption keeps every call's absorption disjoint (no
      // double-counting). Owned workers are destroyed right after, so
      // the reset is moot there.
      W.Solver->resetStats();
    }
    St.SmtQueries += ParallelQueries.load(std::memory_order_relaxed);
    St.WallMicros = Watch.elapsedMicros();
    St.SolverMicros = Primary.stats().TotalMicros - SolverMicrosBefore;
  };
  auto OverBudget = [&](const char *What) {
    Result.V = Verdict::ResourceLimit;
    Result.FailureReason =
        std::string(What) + " limit reached with " +
        std::to_string(RemainingInBatch + NextT.size()) +
        " frontier conjuncts outstanding";
    St.FinalConjuncts = R.size();
    Finish();
  };

  // The pool parks its threads between epochs — and, warm, between whole
  // checks, so a service request pays two condvar handshakes instead of
  // Jobs thread spawns.
  std::unique_ptr<WorkerPool> OwnedPool;
  if (Warm) {
    if (!Warm->Pool || Warm->Pool->workers() != Options.Jobs)
      Warm->Pool = std::make_unique<WorkerPool>(Options.Jobs);
  } else {
    OwnedPool = std::make_unique<WorkerPool>(Options.Jobs);
  }
  WorkerPool &Pool = Warm ? *Warm->Pool : *OwnedPool;
  std::vector<EpochTask> Batch;
  std::vector<std::vector<size_t>> Assignments(Pool.workers());

  // Epoch-pipeline metrics, flushed once per check on every exit path.
  // MergeStallMicros is the merge drain: sequential replay time during
  // which every worker idles at the barrier — the number the ROADMAP's
  // skip-ahead merge item wants driven to zero.
  uint64_t MergeStallMicros = 0;
  uint64_t EpochCount = 0;
  struct ParallelMetricsFlush {
    const CheckStats &St;
    uint64_t &MergeStallMicros;
    uint64_t &EpochCount;
    ~ParallelMetricsFlush() {
      obs::Registry &M = obs::metrics();
      // The shared check.* family (the sequential loop flushes the same
      // names), so dashboards see one counter set whatever the engine.
      static obs::Counter &Runs = M.counter("check.runs");
      static obs::Counter &Iterations = M.counter("check.iterations");
      static obs::Counter &Extends = M.counter("check.extends");
      static obs::Counter &Skips = M.counter("check.skips");
      static obs::Counter &Queries = M.counter("check.smt_queries");
      Runs.add(1);
      Iterations.add(St.Iterations);
      Extends.add(St.Extends);
      Skips.add(St.Skips);
      Queries.add(St.SmtQueries);
      static obs::Counter &Stall =
          M.counter("parallel.merge_stall_micros");
      static obs::Counter &Epochs = M.counter("parallel.epochs");
      Stall.add(MergeStallMicros);
      Epochs.add(EpochCount);
    }
  } MetricsFlush{St, MergeStallMicros, EpochCount};
  std::unordered_set<TemplatePair, TemplatePairHasher> ExtendedSinceFreeze;

  // Each frontier generation is processed in *chunks* of a few epochs
  // rather than as one giant epoch: the premise freeze then lags the
  // live R by at most one chunk, so far fewer merge items see a
  // same-guard extension between freeze and replay — the only case that
  // must re-query. Chunks change how often the barrier runs, never what
  // is decided: each chunk is its own freeze/decide/merge cycle with the
  // exactness argument applied verbatim. Sized so every worker gets a
  // handful of tasks per epoch even after uneven stealing.
  const size_t ChunkSize = std::max<size_t>(32, Options.Jobs * 8);

  static obs::Histogram &GenerationSize =
      obs::metrics().histogram("parallel.generation_size");
  while (!NextT.empty()) {
    GenerationSize.observe(NextT.size());
    Batch.clear();
    Batch.reserve(NextT.size());
    for (GuardedFormula &G : NextT)
      Batch.push_back(EpochTask{std::move(G), nullptr,
                                EpochTask::Answer::NotEntailed});
    NextT.clear();

    for (size_t ChunkStart = 0; ChunkStart < Batch.size();
         ChunkStart += ChunkSize) {
      const size_t ChunkEnd =
          std::min(ChunkStart + ChunkSize, Batch.size());
      const size_t FrozenR = R.size(); // This epoch's premise generation.

      // Wall budget, checked before committing a whole chunk of solver
      // work: the merge loop below re-checks every 16 iterations exactly
      // like the sequential engine, but that alone would let a chunk's
      // parallel phase launch unmetered and overshoot the valve by up to
      // ChunkSize queries. Wall trips are inherently timing-dependent
      // (the differential battery budgets by iterations, which stay
      // exact), so tripping a few items earlier than the sequential loop
      // would is fine — blowing the budget by a chunk is not.
      if (Options.MaxWallMicros != 0 &&
          Watch.elapsedMicros() > Options.MaxWallMicros) {
        RemainingInBatch = Batch.size() - ChunkStart;
        OverBudget("wall-clock");
        return Result;
      }

      // Deal the chunk with guard affinity: every task whose goal is
      // guarded by template pair TP goes to worker hash(TP) mod P, every
      // epoch of the run. Entailment consults only same-guard premises,
      // so affinity means one worker's session — not all of them — pays
      // the bit-blast of each guard's premise set, and that session's
      // learned clauses stay hot for the guard's whole conjunct stream.
      // Stealing can still move a task (and force the thief to prime the
      // guard's premises too); that is load balance bought at the price
      // of one extra premise copy, and it never changes an answer.
      for (auto &A : Assignments)
        A.clear();
      for (size_t T = ChunkStart; T < ChunkEnd; ++T)
        Assignments[TemplatePairHasher()(Batch[T].Psi.TP) %
                    Pool.workers()]
            .push_back(T);

      // Parallel phase. R is frozen until the merge below, so worker
      // reads of R[0..FrozenR) race with nothing; each task writes only
      // its own Batch element; the pool's epoch barrier publishes all of
      // it back.
      ++EpochCount;
      {
        obs::ScopedSpan EpochSpan(
            "epoch.parallel", "parallel",
            obs::TraceArgs()
                .add("tasks", uint64_t(ChunkEnd - ChunkStart))
                .add("frozen_premises", uint64_t(FrozenR)));
        Pool.runEpoch(Assignments, [&](size_t WorkerId, size_t TaskIdx) {
        // Name each pool thread's Perfetto track once; solver.query spans
        // recorded on this thread then land on the worker's own track.
        if (obs::traceSink()) {
          static thread_local bool TrackNamed = false;
          if (!TrackNamed) {
            obs::nameCurrentThread("worker-" + std::to_string(WorkerId));
            TrackNamed = true;
          }
        }
        EpochTask &T = Batch[TaskIdx];
        T.Goal = lowerPure(Left, Right, T.Psi.TP, T.Psi.Phi);
        if (T.Goal->kind() == smt::BvFormula::Kind::True) {
          T.A = EpochTask::Answer::TriviallyTrue;
          return;
        }
        WorkerState &W = Workers[WorkerId];
        smt::SmtSolver::IncrementalSession &S =
            W.Sessions.primed(*W.Solver, Options.Limits, Left, Right, R,
                              FrozenR, T.Psi.TP);
        ParallelQueries.fetch_add(1, std::memory_order_relaxed);
        T.A = S.isEntailed(T.Goal) ? EpochTask::Answer::Entailed
                                   : EpochTask::Answer::NotEntailed;
        });
      }

      // Merge phase: sequential replay in frontier order.
      obs::ScopedSpan MergeSpan("epoch.merge", "parallel");
      obs::ScopedMicros MergeTimer(MergeStallMicros);
      ExtendedSinceFreeze.clear();
      for (size_t I = ChunkStart; I < ChunkEnd; ++I) {
        // The sequential loop trips its budgets *before* popping, so the
        // current conjunct still counts as outstanding in the budget
        // message; it leaves the frontier once the checks pass.
        RemainingInBatch = Batch.size() - I;
        if (++St.Iterations > Options.MaxIterations) {
          OverBudget("iteration");
          return Result;
        }
        if (Options.MaxWallMicros != 0 && (St.Iterations & 0xf) == 0 &&
            Watch.elapsedMicros() > Options.MaxWallMicros) {
          OverBudget("wall-clock");
          return Result;
        }
        RemainingInBatch = Batch.size() - I - 1;
        EpochTask &T = Batch[I];

        bool Entailed;
        if (T.A != EpochTask::Answer::NotEntailed) {
          // Trivially true, or entailed by the frozen generation — a
          // subset of the premises the sequential checker would consult,
          // so Skip is its decision too (entailment is monotone).
          Entailed = true;
        } else if (!ExtendedSinceFreeze.count(T.Psi.TP)) {
          // No same-guard premise appeared since the freeze: the frozen
          // answer *is* the sequential answer.
          Entailed = false;
        } else {
          // The relevant premise set grew since the freeze; re-derive
          // against the live R. This is the only merge-side entailment
          // query. It borrows the guard's affinity owner — the worker
          // whose session already holds this guard's premise CNF and
          // lemmas. Sound because the epoch barrier made that worker's
          // state coherent to this thread and no worker is running; and
          // advancing its session to the live R cannot overshoot a
          // future epoch, since R only grows between freezes, so every
          // later freeze point is at or beyond the live end and the
          // session keeps consuming exact premise prefixes.
          WorkerState &Owner =
              Workers[TemplatePairHasher()(T.Psi.TP) % Workers.size()];
          ++St.SmtQueries;
          Entailed = Owner.Sessions
                         .primed(*Owner.Solver, Options.Limits, Left,
                                 Right, R, R.size(), T.Psi.TP)
                         .isEntailed(T.Goal);
        }

        if (Entailed) {
          ++St.Skips;
          if (Options.RecordTrace)
            Result.Trace.push_back(
                TraceStep{TraceStep::Kind::Skip, T.Psi, 0});
          continue;
        }

        ++St.Extends;
        R.push_back(T.Psi);
        ExtendedSinceFreeze.insert(T.Psi.TP);

        // Early refutation, exactly as in the sequential loop (see
        // core/Checker.cpp for why this keeps the checker total).
        if (T.Psi.TP == Spec.TP) {
          smt::BvFormulaRef Query = lowerPure(
              Left, Right, Spec.TP, Pure::mkImplies(Premise, T.Psi.Phi));
          bool Valid = Query->kind() == smt::BvFormula::Kind::True;
          if (!Valid && Query->kind() != smt::BvFormula::Kind::False) {
            ++St.SmtQueries;
            Valid = Primary.isValid(Query);
          }
          if (!Valid) {
            Result.V = Verdict::NotEquivalent;
            Result.FailureReason =
                "refuted: phi does not entail conjunct " +
                T.Psi.str(Left, Right);
            St.FinalConjuncts = R.size();
            Finish();
            return Result;
          }
        }

        std::vector<GuardedFormula> Wp = weakestPrecondition(
            Left, Right, T.Psi, Pairs, Options.UseLeaps, FreshCounter);
        if (Options.RecordTrace)
          Result.Trace.push_back(
              TraceStep{TraceStep::Kind::Extend, T.Psi, Wp.size()});
        for (GuardedFormula &G : Wp)
          Push(std::move(G));
      }
    }
    RemainingInBatch = 0;
  }

  // Done: check φ ⊨ ⋀R (identical to the sequential epilogue).
  Result.V = Verdict::Equivalent;
  for (const GuardedFormula &Conjunct : R) {
    if (Conjunct.TP != Spec.TP)
      continue;
    smt::BvFormulaRef Query = lowerPure(
        Left, Right, Spec.TP, Pure::mkImplies(Premise, Conjunct.Phi));
    bool Valid;
    if (Query->kind() == smt::BvFormula::Kind::True) {
      Valid = true;
    } else if (Query->kind() == smt::BvFormula::Kind::False) {
      Valid = false;
    } else {
      ++St.SmtQueries;
      Valid = Primary.isValid(Query);
    }
    if (!Valid) {
      Result.V = Verdict::NotEquivalent;
      Result.FailureReason =
          "final check failed: phi does not entail conjunct " +
          Conjunct.str(Left, Right);
      break;
    }
  }
  if (Options.RecordTrace)
    Result.Trace.push_back(
        TraceStep{TraceStep::Kind::Done,
                  GuardedFormula{Spec.TP, Pure::mkTrue()}, 0});

  St.FinalConjuncts = R.size();
  for (const GuardedFormula &G : R)
    St.FormulaNodes += G.Phi->size();

  if (Result.V == Verdict::Equivalent) {
    EquivalenceCertificate &Cert = Result.Certificate;
    Cert.Spec = Spec;
    Cert.Spec.Premise = Premise;
    Cert.Relation = R;
    Cert.UseLeaps = Options.UseLeaps;
    Cert.UseReachability = Options.UseReachability;
  }

  Finish();
  return Result;
}
