//===- WorkStealingDeque.h - Per-worker task deque --------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-worker task container of the parallel frontier engine: the
/// owner pushes and pops at the bottom (LIFO keeps its working set warm in
/// the bit-blast caches), thieves steal from the top (FIFO hands a thief
/// the oldest — typically largest-remaining — chunk of the epoch).
///
/// Tasks are indices into the epoch's frontier batch, so the deque moves
/// plain size_t values. Synchronization is one mutex per deque: every
/// task is an SMT entailment query costing tens of microseconds to
/// milliseconds, so a lock whose critical section is a deque operation is
/// invisible next to the work it hands out — a Chase-Lev array would buy
/// nothing measurable at checker task granularity while costing the usual
/// memory-ordering subtlety tax.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_PARALLEL_WORKSTEALINGDEQUE_H
#define LEAPFROG_PARALLEL_WORKSTEALINGDEQUE_H

#include <cstddef>
#include <deque>
#include <mutex>

namespace leapfrog {
namespace parallel {

class WorkStealingDeque {
public:
  /// Owner side: enqueue a task at the bottom.
  void push(size_t Task) {
    std::lock_guard<std::mutex> Lock(M);
    D.push_back(Task);
  }

  /// Owner side: dequeue the most recently pushed task. Returns false
  /// when the deque is empty.
  bool pop(size_t &Task) {
    std::lock_guard<std::mutex> Lock(M);
    if (D.empty())
      return false;
    Task = D.back();
    D.pop_back();
    return true;
  }

  /// Thief side: dequeue the oldest task. Returns false when empty.
  bool steal(size_t &Task) {
    std::lock_guard<std::mutex> Lock(M);
    if (D.empty())
      return false;
    Task = D.front();
    D.pop_front();
    return true;
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(M);
    return D.size();
  }

private:
  mutable std::mutex M;
  std::deque<size_t> D;
};

} // namespace parallel
} // namespace leapfrog

#endif // LEAPFROG_PARALLEL_WORKSTEALINGDEQUE_H
