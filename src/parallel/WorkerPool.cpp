//===- WorkerPool.cpp - Epoch-barrier worker pool -------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//

#include "parallel/WorkerPool.h"

#include <cassert>

using namespace leapfrog;
using namespace leapfrog::parallel;

WorkerPool::WorkerPool(size_t Workers) {
  size_t N = Workers < 1 ? 1 : Workers;
  for (size_t I = 0; I < N; ++I)
    Deques.emplace_back();
  Threads.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Threads.emplace_back([this, I] { workerMain(I); });
}

WorkerPool::~WorkerPool() {
  // A launched-but-unwaited epoch (an early return out of the pipelined
  // merge) must drain before teardown — its tasks reference caller state.
  wait();
  {
    std::lock_guard<std::mutex> Lock(M);
    Stop = true;
  }
  CvStart.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void WorkerPool::runEpoch(size_t NumTasks, const TaskFn &TaskBody) {
  if (NumTasks == 0)
    return;
  assert(!Launched && "epoch already in flight");
  // Deal contiguous blocks: worker W owns [W*N/P, (W+1)*N/P). No worker
  // is running here — the previous epoch's barrier completed — so the
  // deques are safe to fill without observing steals.
  size_t P = Threads.size();
  for (size_t W = 0; W < P; ++W) {
    size_t Lo = NumTasks * W / P, Hi = NumTasks * (W + 1) / P;
    for (size_t T = Lo; T < Hi; ++T)
      Deques[W].push(T);
  }
  Fn = TaskBody;
  postSeededEpoch();
  wait();
}

void WorkerPool::runEpoch(const std::vector<std::vector<size_t>> &Assigned,
                          const TaskFn &TaskBody) {
  launchEpoch(Assigned, TaskBody);
  wait();
}

void WorkerPool::launchEpoch(const std::vector<std::vector<size_t>> &Assigned,
                             TaskFn TaskBody) {
  assert(Assigned.size() == Threads.size() &&
         "one task list per worker (may be empty)");
  assert(!Launched && "epoch already in flight");
  size_t Total = 0;
  for (size_t W = 0; W < Assigned.size() && W < Threads.size(); ++W) {
    Total += Assigned[W].size();
    for (size_t T : Assigned[W])
      Deques[W].push(T);
  }
  if (Total == 0)
    return;
  Fn = std::move(TaskBody);
  postSeededEpoch();
}

void WorkerPool::postSeededEpoch() {
  {
    std::lock_guard<std::mutex> Lock(M);
    assert(DoneCount == Threads.size() || Epoch == 0);
    DoneCount = 0;
    ++Epoch;
    Launched = true;
  }
  CvStart.notify_all();
}

bool WorkerPool::epochInFlight() {
  std::lock_guard<std::mutex> Lock(M);
  return Launched && DoneCount != Threads.size();
}

void WorkerPool::wait() {
  {
    std::unique_lock<std::mutex> Lock(M);
    if (!Launched)
      return;
    CvDone.wait(Lock, [&] { return DoneCount == Threads.size(); });
    Launched = false;
  }
  Fn = nullptr;
}

std::chrono::steady_clock::time_point WorkerPool::lastEpochEnd() {
  std::lock_guard<std::mutex> Lock(M);
  return EpochEnd;
}

void WorkerPool::workerMain(size_t Id) {
  uint64_t SeenEpoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> Lock(M);
      CvStart.wait(Lock, [&] { return Stop || Epoch != SeenEpoch; });
      if (Stop)
        return;
      SeenEpoch = Epoch;
    }
    runTasks(Id);
    {
      std::lock_guard<std::mutex> Lock(M);
      if (++DoneCount == Threads.size()) {
        EpochEnd = std::chrono::steady_clock::now();
        CvDone.notify_one();
      }
    }
  }
}

void WorkerPool::runTasks(size_t Id) {
  // The Fn member is stable for the whole epoch (the main thread only
  // reassigns it outside one), so one unsynchronized read per task sweep
  // is fine — the acquire in workerMain ordered it.
  size_t Task;
  for (;;) {
    if (Deques[Id].pop(Task)) {
      Fn(Id, Task);
      continue;
    }
    bool Found = false;
    for (size_t K = 1; K < Deques.size() && !Found; ++K) {
      size_t Victim = (Id + K) % Deques.size();
      if (Deques[Victim].steal(Task)) {
        Found = true;
        Fn(Id, Task);
      }
    }
    if (!Found)
      return;
  }
}
