//===- WorkerPool.h - Epoch-barrier worker pool -----------------*- C++ -*-===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed pool of worker threads driven in *epochs*: the caller hands the
/// pool a batch of tasks, every worker drains its own work-stealing deque
/// (stealing from siblings when it runs dry), and runEpoch() returns only
/// when the whole batch is done — the barrier the parallel frontier engine
/// synchronizes premise generations on. Tasks within an epoch must be
/// mutually independent and must not enqueue further tasks; new work is
/// what the *next* epoch is for.
///
/// Epochs may also be launched asynchronously (launchEpoch/wait): the
/// caller seeds the next epoch and keeps running — the skip-ahead merge of
/// the parallel engine, which decides generation N+1 while it drains
/// generation N's merge. At most one epoch is in flight at a time; the
/// launch handshake (the pool mutex) is the synchronizes-with edge that
/// publishes everything the caller wrote before launching to every worker.
///
/// Threads are created once and parked between epochs, so per-epoch cost
/// is two condition-variable handshakes, not thread churn. WorkerId is a
/// stable index in [0, workers()): each worker thread always reports the
/// same id, which is what lets callers keep per-worker state (solver
/// sessions) without synchronization.
///
//===----------------------------------------------------------------------===//

#ifndef LEAPFROG_PARALLEL_WORKERPOOL_H
#define LEAPFROG_PARALLEL_WORKERPOOL_H

#include "parallel/WorkStealingDeque.h"

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace leapfrog {
namespace parallel {

class WorkerPool {
public:
  /// Invoked once per task: \p WorkerId identifies the executing worker
  /// (stable across epochs), \p Task is the task's index in the batch.
  using TaskFn = std::function<void(size_t WorkerId, size_t Task)>;

  /// Spawns \p Workers threads (at least one), parked until runEpoch().
  explicit WorkerPool(size_t Workers);

  /// Joins all workers. Must not be called while an epoch is running.
  ~WorkerPool();

  size_t workers() const { return Threads.size(); }

  /// Runs tasks 0..NumTasks-1 to completion and returns (the epoch
  /// barrier). Tasks are dealt to the per-worker deques in contiguous
  /// blocks; the steal path rebalances whatever the blocks got wrong.
  /// Calls are serialized: one epoch at a time, from the thread that
  /// owns the pool.
  void runEpoch(size_t NumTasks, const TaskFn &Fn);

  /// Same barrier, but the caller chooses the deal: Assigned[W] seeds
  /// worker W's deque (in order). This is how the checker keeps
  /// template-pair affinity — tasks whose entailments share a premise
  /// set go to the same worker, so that worker's incremental session is
  /// the only one that has to blast those premises. Task values are
  /// opaque to the pool; stealing still applies, trading some affinity
  /// for load balance.
  void runEpoch(const std::vector<std::vector<size_t>> &Assigned,
                const TaskFn &Fn);

  /// Asynchronous epoch: seeds the deques from \p Assigned, posts the
  /// epoch, and returns while the workers run. The pool keeps an owned
  /// copy of \p Fn alive until wait(); everything \p Fn captures by
  /// reference must outlive the epoch. Precondition: no epoch in flight
  /// (wait() first). A launch with zero total tasks is a no-op.
  void launchEpoch(const std::vector<std::vector<size_t>> &Assigned,
                   TaskFn Fn);

  /// Blocks until the launched epoch drains; no-op when none is in
  /// flight. Only after wait() returns may the caller launch again, read
  /// task results, or touch worker-owned state.
  bool epochInFlight();
  void wait();

  /// Steady-clock stamp recorded by the last worker of the most recently
  /// completed epoch — the overlap metric of the pipelined merge compares
  /// it against the merge interval. Meaningful only after at least one
  /// epoch completed.
  std::chrono::steady_clock::time_point lastEpochEnd();

private:
  /// Posts the epoch (deques already seeded); Fn was already stored.
  void postSeededEpoch();
  void workerMain(size_t Id);
  /// Drains this worker's deque, then steals from siblings; returns when
  /// every deque has been observed empty (tasks never spawn tasks, so an
  /// empty sweep is terminal).
  void runTasks(size_t Id);

  std::vector<std::thread> Threads;
  /// deque, not vector: WorkStealingDeque owns a mutex, so elements must
  /// never relocate.
  std::deque<WorkStealingDeque> Deques;

  std::mutex M;
  std::condition_variable CvStart; ///< Main → workers: epoch posted.
  std::condition_variable CvDone;  ///< Last worker → main: epoch drained.
  TaskFn Fn;                       ///< Owned for the duration of an epoch.
  uint64_t Epoch = 0;
  size_t DoneCount = 0;
  bool Launched = false; ///< Epoch posted and not yet wait()ed out.
  bool Stop = false;
  std::chrono::steady_clock::time_point EpochEnd{};
};

} // namespace parallel
} // namespace leapfrog

#endif // LEAPFROG_PARALLEL_WORKERPOOL_H
