//===- smtlib-shim.cpp - SMT-LIB2 REPL over the in-repo solver ------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// A minimal SMT-LIB2 (QF_BV: concat/extract/equality) solver speaking the
// standard REPL on stdin/stdout, answering with the in-repo bit-blaster.
// Two jobs:
//
//  - It is the *mock external solver* of the test suite: ExtSolverTest
//    points SmtLibSolver at this binary, so the whole subprocess pipeline
//    (pipes, handshake, incremental sessions, model parse-back) is
//    exercised end to end in tier-1 with no external dependency — and
//    because the answers come from the same CDCL core, any disagreement
//    the cross-check backend reports against it is a protocol bug, not a
//    solver bug.
//
//  - It is a standalone QF_BV check-sat tool: pipe any script the SmtLib
//    printer emits (or one z3 would accept, within the fragment) into
//    `leapfrog-smtlib-shim` and compare answers across solvers in either
//    direction.
//
// Supported commands: set-logic, set-option (:print-success honored, the
// rest accepted), set-info, declare-const, declare-fun (zero arity),
// assert, push/pop, check-sat, check-sat-assuming, get-model, get-value,
// echo, reset, exit. Sorts: (_ BitVec n) and Bool (Bool constants are
// encoded as width-1 bit-vectors internally — they exist so the
// activation literals of SmtLibSolver's multiplexed sessions work).
//
//===----------------------------------------------------------------------===//

#include "smt/SmtLib.h"
#include "smt/Solver.h"

#include <cstdio>
#include <map>
#include <string>
#include <vector>

using namespace leapfrog;
using namespace leapfrog::smt;

namespace {

/// A declared constant: Bool or (_ BitVec Width).
struct Decl {
  bool IsBool = false;
  size_t Width = 1;
};

/// One push level: the assertions and declarations it owns.
struct Scope {
  std::vector<BvFormulaRef> Assertions;
  std::vector<std::string> Declared;
};

struct Shim {
  bool PrintSuccess = false;
  std::vector<Scope> Stack{Scope()};
  std::map<std::string, Decl> Decls;
  /// Last check-sat outcome + model, for get-model/get-value.
  bool HaveModel = false;
  Model LastModel;

  void reset() {
    PrintSuccess = false;
    Stack.assign(1, Scope());
    Decls.clear();
    HaveModel = false;
    LastModel.clear();
  }
};

void reply(const std::string &S) {
  std::fputs(S.c_str(), stdout);
  std::fputc('\n', stdout);
  std::fflush(stdout);
}

void replyError(const std::string &Msg) {
  // SMT-LIB escapes '"' in string literals by doubling; our messages
  // contain none.
  reply("(error \"" + Msg + "\")");
}

void replySuccess(const Shim &S) {
  if (S.PrintSuccess)
    reply("success");
}

/// Thrown (as a value) by the term/formula parsers on malformed input.
struct ParseError {
  std::string Msg;
};

size_t parseWidth(const SExpr &E) {
  if (!E.IsAtom || E.Atom.empty())
    throw ParseError{"expected a numeral"};
  size_t W = 0;
  for (char C : E.Atom) {
    if (C < '0' || C > '9')
      throw ParseError{"expected a numeral, got '" + E.Atom + "'"};
    W = W * 10 + size_t(C - '0');
    if (W > (1u << 24))
      throw ParseError{"numeral out of range"};
  }
  return W;
}

BvFormulaRef parseFormula(Shim &S, const SExpr &E);

BvTermRef parseTerm(Shim &S, const SExpr &E) {
  if (E.IsAtom) {
    Bitvector BV;
    if (parseBvLiteral(E.Atom, BV))
      return BvTerm::mkConst(BV);
    auto It = S.Decls.find(E.Atom);
    if (It == S.Decls.end())
      throw ParseError{"unknown constant '" + E.Atom + "'"};
    if (It->second.IsBool)
      throw ParseError{"'" + E.Atom + "' is Bool, expected a bit-vector"};
    return BvTerm::mkVar(E.Atom, It->second.Width);
  }
  if (E.List.empty())
    throw ParseError{"empty term"};
  const SExpr &Head = E.List[0];
  if (Head.IsAtom && Head.Atom == "concat") {
    if (E.List.size() < 3)
      throw ParseError{"concat needs at least two operands"};
    BvTermRef T = parseTerm(S, E.List[1]);
    for (size_t I = 2; I < E.List.size(); ++I)
      T = BvTerm::mkConcat(T, parseTerm(S, E.List[I]));
    return T;
  }
  if (Head.IsAtom && Head.Atom == "_") {
    // (_ bvN w)
    if (E.List.size() == 3 && E.List[1].IsAtom &&
        E.List[1].Atom.rfind("bv", 0) == 0) {
      size_t W = parseWidth(E.List[2]);
      unsigned long long Value = 0;
      const std::string &Bv = E.List[1].Atom;
      if (Bv.size() < 3)
        throw ParseError{"malformed bit-vector literal"};
      for (size_t I = 2; I < Bv.size(); ++I) {
        if (Bv[I] < '0' || Bv[I] > '9')
          throw ParseError{"malformed bit-vector literal '" + Bv + "'"};
        Value = Value * 10 + unsigned(Bv[I] - '0');
      }
      if (W > 64)
        throw ParseError{"bv literal wider than 64 unsupported"};
      return BvTerm::mkConst(Bitvector::fromUint(Value, W));
    }
    throw ParseError{"unsupported indexed identifier"};
  }
  if (!Head.IsAtom && Head.List.size() == 4 && Head.List[0].IsAtom &&
      Head.List[0].Atom == "_" && Head.List[1].IsAtom &&
      Head.List[1].Atom == "extract") {
    // ((_ extract i j) t): i ≥ j, LSB-indexed inclusive.
    if (E.List.size() != 2)
      throw ParseError{"extract takes one operand"};
    size_t Hi = parseWidth(Head.List[2]); // MSB-side index (LSB-based).
    size_t Lo = parseWidth(Head.List[3]);
    BvTermRef Op = parseTerm(S, E.List[1]);
    size_t W = Op->width();
    if (Hi < Lo || Hi >= W)
      throw ParseError{"extract indices out of range"};
    // SMT-LIB indexes from the LSB; BvTerm from the MSB (bit 0 first).
    return BvTerm::mkExtract(Op, W - 1 - Hi, W - 1 - Lo);
  }
  throw ParseError{"unsupported term"};
}

BvFormulaRef parseFormula(Shim &S, const SExpr &E) {
  if (E.IsAtom) {
    if (E.Atom == "true")
      return BvFormula::mkTrue();
    if (E.Atom == "false")
      return BvFormula::mkFalse();
    auto It = S.Decls.find(E.Atom);
    if (It != S.Decls.end() && It->second.IsBool)
      return BvFormula::mkEq(BvTerm::mkVar(E.Atom, 1),
                             BvTerm::mkConst(Bitvector::fromUint(1, 1)));
    throw ParseError{"expected a formula, got '" + E.Atom + "'"};
  }
  if (E.List.empty() || !E.List[0].IsAtom)
    throw ParseError{"expected a formula"};
  const std::string &Op = E.List[0].Atom;
  auto Sub = [&](size_t I) { return parseFormula(S, E.List[I]); };
  if (Op == "=") {
    if (E.List.size() != 3)
      throw ParseError{"= takes two operands"};
    // Equality over Bool operands shows up as (= b true) style scripts;
    // route atoms that parse as formulas through iff. Otherwise compare
    // bit-vector terms.
    bool LhsIsFormula = false;
    try {
      (void)parseTerm(S, E.List[1]);
    } catch (const ParseError &) {
      LhsIsFormula = true;
    }
    if (LhsIsFormula) {
      BvFormulaRef A = Sub(1), B = Sub(2);
      return BvFormula::mkAnd(BvFormula::mkImplies(A, B),
                              BvFormula::mkImplies(B, A));
    }
    BvTermRef L = parseTerm(S, E.List[1]);
    BvTermRef R = parseTerm(S, E.List[2]);
    if (L->width() != R->width())
      throw ParseError{"= operand widths differ"};
    return BvFormula::mkEq(L, R);
  }
  if (Op == "not") {
    if (E.List.size() != 2)
      throw ParseError{"not takes one operand"};
    return BvFormula::mkNot(Sub(1));
  }
  if (Op == "and" || Op == "or") {
    if (E.List.size() < 2)
      throw ParseError{Op + " needs operands"};
    BvFormulaRef F = Sub(1);
    for (size_t I = 2; I < E.List.size(); ++I)
      F = Op == "and" ? BvFormula::mkAnd(F, Sub(I))
                      : BvFormula::mkOr(F, Sub(I));
    return F;
  }
  if (Op == "=>") {
    if (E.List.size() < 3)
      throw ParseError{"=> needs at least two operands"};
    // Right-associative per SMT-LIB.
    BvFormulaRef F = Sub(E.List.size() - 1);
    for (size_t I = E.List.size() - 1; I > 1; --I)
      F = BvFormula::mkImplies(Sub(I - 1), F);
    return F;
  }
  throw ParseError{"unsupported connective '" + Op + "'"};
}

/// Parses a declare-const / zero-arity declare-fun sort.
Decl parseSort(const SExpr &E) {
  if (E.IsAtom) {
    if (E.Atom == "Bool")
      return Decl{true, 1};
    throw ParseError{"unsupported sort '" + E.Atom + "'"};
  }
  if (E.List.size() == 3 && E.List[0].IsAtom && E.List[0].Atom == "_" &&
      E.List[1].IsAtom && E.List[1].Atom == "BitVec")
    return Decl{false, parseWidth(E.List[2])};
  throw ParseError{"unsupported sort"};
}

void declare(Shim &S, const std::string &Name, const Decl &D) {
  auto It = S.Decls.find(Name);
  if (It != S.Decls.end())
    throw ParseError{"'" + Name + "' already declared"};
  S.Decls.emplace(Name, D);
  S.Stack.back().Declared.push_back(Name);
}

std::string printValue(const Decl &D, const Bitvector &V) {
  if (D.IsBool)
    return V.bit(0) ? "true" : "false";
  return "#b" + V.str();
}

void doCheckSat(Shim &S, const std::vector<BvFormulaRef> &Assumptions) {
  BvFormulaRef Conj = BvFormula::mkTrue();
  for (const Scope &Sc : S.Stack)
    for (const BvFormulaRef &A : Sc.Assertions)
      Conj = BvFormula::mkAnd(Conj, A);
  for (const BvFormulaRef &A : Assumptions)
    Conj = BvFormula::mkAnd(Conj, A);
  BitBlastSolver Solver;
  Model M;
  SatResult R = Solver.checkSat(Conj, &M);
  if (R == SatResult::Sat) {
    S.HaveModel = true;
    S.LastModel = std::move(M);
    reply("sat");
  } else {
    S.HaveModel = false;
    S.LastModel.clear();
    reply("unsat");
  }
}

const Bitvector *modelLookup(const Shim &S, const std::string &Name) {
  for (const auto &[N, V] : S.LastModel)
    if (N == Name)
      return &V;
  return nullptr;
}

void doGetModel(Shim &S) {
  if (!S.HaveModel) {
    replyError("model is not available");
    return;
  }
  std::string Out = "(\n";
  for (const auto &[Name, D] : S.Decls) {
    const Bitvector *V = modelLookup(S, Name);
    Bitvector Zero(D.Width);
    Out += "  (define-fun " + Name + " () " +
           (D.IsBool ? std::string("Bool")
                     : "(_ BitVec " + std::to_string(D.Width) + ")") +
           " " + printValue(D, V ? *V : Zero) + ")\n";
  }
  Out += ")";
  reply(Out);
}

void execCommand(Shim &S, const SExpr &Cmd) {
  if (Cmd.IsAtom || Cmd.List.empty() || !Cmd.List[0].IsAtom) {
    replyError("expected a command");
    return;
  }
  const std::string &Op = Cmd.List[0].Atom;
  try {
    if (Op == "set-logic" || Op == "set-info") {
      replySuccess(S);
    } else if (Op == "set-option") {
      if (Cmd.List.size() == 3 && Cmd.List[1].IsAtom &&
          Cmd.List[1].Atom == ":print-success" && Cmd.List[2].IsAtom) {
        S.PrintSuccess = Cmd.List[2].Atom == "true";
        // Reply under the *new* setting, like z3: enabling it confirms
        // with the first "success".
        replySuccess(S);
      } else {
        replySuccess(S);
      }
    } else if (Op == "declare-const") {
      if (Cmd.List.size() != 3 || !Cmd.List[1].IsAtom)
        throw ParseError{"declare-const takes a name and a sort"};
      declare(S, Cmd.List[1].Atom, parseSort(Cmd.List[2]));
      replySuccess(S);
    } else if (Op == "declare-fun") {
      if (Cmd.List.size() != 4 || !Cmd.List[1].IsAtom ||
          Cmd.List[2].IsAtom || !Cmd.List[2].List.empty())
        throw ParseError{"only zero-arity declare-fun is supported"};
      declare(S, Cmd.List[1].Atom, parseSort(Cmd.List[3]));
      replySuccess(S);
    } else if (Op == "assert") {
      if (Cmd.List.size() != 2)
        throw ParseError{"assert takes one formula"};
      S.Stack.back().Assertions.push_back(parseFormula(S, Cmd.List[1]));
      replySuccess(S);
    } else if (Op == "push" || Op == "pop") {
      size_t N = Cmd.List.size() >= 2 ? parseWidth(Cmd.List[1]) : 1;
      for (size_t I = 0; I < N; ++I) {
        if (Op == "push") {
          S.Stack.push_back(Scope());
        } else {
          if (S.Stack.size() <= 1)
            throw ParseError{"pop below the initial level"};
          for (const std::string &Name : S.Stack.back().Declared)
            S.Decls.erase(Name);
          S.Stack.pop_back();
        }
      }
      replySuccess(S);
    } else if (Op == "check-sat") {
      doCheckSat(S, {});
    } else if (Op == "check-sat-assuming") {
      if (Cmd.List.size() != 2 || Cmd.List[1].IsAtom)
        throw ParseError{"check-sat-assuming takes a literal list"};
      std::vector<BvFormulaRef> Assumptions;
      for (const SExpr &L : Cmd.List[1].List)
        Assumptions.push_back(parseFormula(S, L));
      doCheckSat(S, Assumptions);
    } else if (Op == "get-model") {
      doGetModel(S);
    } else if (Op == "get-value") {
      if (Cmd.List.size() != 2 || Cmd.List[1].IsAtom)
        throw ParseError{"get-value takes a term list"};
      if (!S.HaveModel) {
        replyError("model is not available");
        return;
      }
      std::string Out = "(";
      for (const SExpr &T : Cmd.List[1].List) {
        if (!T.IsAtom)
          throw ParseError{"only constants are supported in get-value"};
        auto It = S.Decls.find(T.Atom);
        if (It == S.Decls.end())
          throw ParseError{"unknown constant '" + T.Atom + "'"};
        const Bitvector *V = modelLookup(S, T.Atom);
        Bitvector Zero(It->second.Width);
        Out += "(" + T.Atom + " " +
               printValue(It->second, V ? *V : Zero) + ")";
      }
      Out += ")";
      reply(Out);
    } else if (Op == "echo") {
      reply(Cmd.List.size() >= 2 && Cmd.List[1].IsAtom ? Cmd.List[1].Atom
                                                       : "");
    } else if (Op == "reset") {
      S.reset();
      replySuccess(S);
    } else if (Op == "exit") {
      std::exit(0);
    } else {
      replyError("unsupported command '" + Op + "'");
    }
  } catch (const ParseError &E) {
    replyError(E.Msg);
  }
}

/// Reads one command's worth of text from stdin — framed by the same
/// SExprScanner ExtProcess uses to frame replies, so both ends of the
/// pipe agree on message boundaries. Returns false on EOF before a
/// complete command arrived (a trailing atom at EOF is delivered).
bool readCommandText(std::string &Out) {
  Out.clear();
  SExprScanner Scanner;
  for (;;) {
    int Ci = std::fgetc(stdin);
    if (Ci == EOF)
      return Scanner.atomInProgress() && !Out.empty();
    switch (Scanner.feed(char(Ci))) {
    case SExprScanner::Step::Skip:
      break;
    case SExprScanner::Step::Continue:
      Out.push_back(char(Ci));
      break;
    case SExprScanner::Step::Done:
      Out.push_back(char(Ci));
      return true;
    case SExprScanner::Step::DoneBefore:
      return true; // Terminating whitespace is not part of the atom.
    }
  }
}

} // namespace

int main() {
  Shim S;
  std::string Text;
  while (readCommandText(Text)) {
    SExpr Cmd;
    size_t Pos = 0;
    if (!parseSExpr(Text, Pos, Cmd)) {
      replyError("malformed input");
      continue;
    }
    execCommand(S, Cmd);
  }
  return 0;
}
