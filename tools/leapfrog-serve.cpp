//===- leapfrog-serve.cpp - Long-running equivalence-checking daemon ------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The daemon form of the checker: start once, keep the solver backend and
// parallel workers warm, answer any number of equivalence requests over a
// line-oriented JSON protocol (docs/SERVICE.md), and serve repeats from a
// fingerprint-keyed result cache. Where leapfrog-cli pays backend
// construction, worker spawning, and a full search per invocation, the
// service pays them once — the economics CI fleets and editor integrations
// need.
//
//   leapfrog-serve --stdio [options]          # serve stdin/stdout
//   leapfrog-serve --socket PATH [options]    # serve an AF_UNIX socket
//
// Exit codes: 0 clean shutdown (shutdown op or stdin EOF), 1 transport
// failure, 3 usage error or unresolvable --backend spec.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"
#include "serve/Server.h"

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

using namespace leapfrog;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: leapfrog-serve (--stdio | --socket PATH) [options]\n"
      "\n"
      "Runs the equivalence checker as a long-lived service: newline-\n"
      "delimited JSON requests in, one JSON response per line out (the\n"
      "protocol reference is docs/SERVICE.md). Completed results are\n"
      "cached under a canonical parser-pair fingerprint, so resubmitting\n"
      "an unchanged pair answers in microseconds with the identical\n"
      "verdict and statistics.\n"
      "\n"
      "transport:\n"
      "  --stdio            serve stdin/stdout (one client; exits on EOF)\n"
      "  --socket PATH      bind an AF_UNIX socket at PATH; one thread\n"
      "                     per connection, shared cache and lanes\n"
      "\n"
      "engine (fixed for the server's lifetime; per-request budgets and\n"
      "ablation switches travel in each request's \"options\"):\n"
      "  --backend SPEC     'bitblast' (default), 'smtlib:CMD', or\n"
      "                     'crosscheck[:CMD]' — an unrecognized SPEC is\n"
      "                     a startup error, never a silent fallback\n"
      "  --jobs N           parallel-engine workers per lane (default 1)\n"
      "  --lanes N          concurrent checks (default 1); total warm\n"
      "                     solver processes = lanes x jobs\n"
      "\n"
      "certificates:\n"
      "  --certify          run every check with proof capture; the cert\n"
      "                     op then serves full LFCERT certificates that\n"
      "                     leapfrog-certcheck verifies independently\n"
      "                     (an smtlib backend is cross-checked so the\n"
      "                     in-process proof covers its verdicts)\n"
      "  --cert-store DIR   persist compressed certificates to DIR keyed\n"
      "                     by fingerprint (implies --certify); a\n"
      "                     restarted server serves them from disk\n"
      "\n"
      "admission control:\n"
      "  --max-queue N      submissions allowed to wait for a lane before\n"
      "                     new ones are rejected (default 64)\n"
      "  --cap-iterations N ceiling on per-request worklist budgets\n"
      "                     (default: none); larger requests are clamped\n"
      "  --cap-seconds N    ceiling on per-request wall budgets, seconds\n"
      "                     (default: none); larger requests are clamped\n"
      "\n"
      "observability (docs/OBSERVABILITY.md):\n"
      "  --slow-ms N        log every submission whose end-to-end wall\n"
      "                     time reaches N milliseconds as one structured\n"
      "                     JSON line on stderr (0 = off, the default)\n"
      "  --trace-out FILE   record a Chrome/Perfetto trace_event timeline\n"
      "                     of the server's lifetime (requests, checker\n"
      "                     phases, per-worker solver queries) and write\n"
      "                     it to FILE on clean shutdown; the metrics op\n"
      "                     is independent of this flag and always\n"
      "                     available\n");
}

bool parseCount(const char *Text, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(Text, &End, 10);
  if (!End || *End != '\0')
    return false;
  Out = V;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  serve::ServiceConfig Config;
  bool Stdio = false;
  std::string SocketPath;
  std::string TraceOutPath;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    uint64_t N = 0;
    if (!std::strcmp(Arg, "--stdio")) {
      Stdio = true;
    } else if (!std::strcmp(Arg, "--socket") && I + 1 < Argc) {
      SocketPath = Argv[++I];
    } else if (!std::strcmp(Arg, "--backend") && I + 1 < Argc) {
      Config.Engine.Backend = Argv[++I];
    } else if (!std::strncmp(Arg, "--backend=", 10)) {
      Config.Engine.Backend = Arg + 10;
    } else if (!std::strcmp(Arg, "--jobs") && I + 1 < Argc &&
               parseCount(Argv[++I], N)) {
      Config.Engine.Jobs = size_t(N ? N : 1);
    } else if (!std::strcmp(Arg, "--lanes") && I + 1 < Argc &&
               parseCount(Argv[++I], N)) {
      Config.Lanes = size_t(N ? N : 1);
    } else if (!std::strcmp(Arg, "--certify")) {
      Config.Engine.Certify = true;
    } else if (!std::strcmp(Arg, "--cert-store") && I + 1 < Argc) {
      Config.CertStoreDir = Argv[++I];
    } else if (!std::strcmp(Arg, "--max-queue") && I + 1 < Argc &&
               parseCount(Argv[++I], N)) {
      Config.MaxQueue = size_t(N);
    } else if (!std::strcmp(Arg, "--cap-iterations") && I + 1 < Argc &&
               parseCount(Argv[++I], N)) {
      Config.MaxIterationsCap = size_t(N);
    } else if (!std::strcmp(Arg, "--cap-seconds") && I + 1 < Argc &&
               parseCount(Argv[++I], N)) {
      Config.MaxWallMicrosCap = N * 1000000u;
    } else if (!std::strcmp(Arg, "--slow-ms") && I + 1 < Argc &&
               parseCount(Argv[++I], N)) {
      Config.SlowMicros = N * 1000u;
    } else if (!std::strcmp(Arg, "--trace-out") && I + 1 < Argc) {
      TraceOutPath = Argv[++I];
    } else {
      std::fprintf(stderr, "leapfrog-serve: bad or incomplete option '%s'\n",
                   Arg);
      usage();
      return 3;
    }
  }

  if (Stdio == !SocketPath.empty()) {
    std::fprintf(stderr,
                 "leapfrog-serve: exactly one of --stdio / --socket PATH "
                 "is required\n");
    usage();
    return 3;
  }

  std::string Error;
  std::unique_ptr<serve::Server> Server = serve::Server::create(Config, &Error);
  if (!Server) {
    std::fprintf(stderr, "leapfrog-serve: %s\n", Error.c_str());
    return 3;
  }

  // Tracing covers the server's whole lifetime; the file is written once,
  // after the transport loop drains, so a crash loses the trace but never
  // a response. Tracing is passive: answers are bit-identical with or
  // without it.
  std::unique_ptr<obs::TraceSink> Trace;
  if (!TraceOutPath.empty()) {
    Trace = std::make_unique<obs::TraceSink>();
    obs::setTraceSink(Trace.get());
    obs::nameCurrentThread("serve-main");
  }

  int Rc = Stdio ? Server->runStdio(std::cin, std::cout)
                 : Server->runSocket(SocketPath);

  if (Trace) {
    obs::setTraceSink(nullptr);
    std::string TraceErr;
    if (!Trace->writeChromeJson(TraceOutPath, &TraceErr))
      std::fprintf(stderr, "leapfrog-serve: %s\n", TraceErr.c_str());
  }
  return Rc;
}
