//===- leapfrog-trace.cpp - Trace-file summarizer --------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Reads a Chrome/Perfetto trace_event JSON file — the format leapfrog-cli
// and leapfrog-serve write via --trace-out (docs/OBSERVABILITY.md) — and
// prints the terminal-side summary a timeline viewer cannot: per-category
// phase totals, the hottest span names, and solve-latency percentiles.
//
//   leapfrog-trace t.json                # summarize
//   leapfrog-trace --top N t.json        # widen/narrow the span table
//
// Span durations are reconstructed from B/E pairs per thread (the emitter
// guarantees balanced, same-thread nesting; unbalanced files are reported,
// not guessed at). 'X' complete events with a "dur" field are accepted too,
// so traces from other tools summarize as well.
//
// Exit codes: 0 ok, 1 malformed trace, 2 usage.
//
//===----------------------------------------------------------------------===//

#include "serve/Json.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace leapfrog;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: leapfrog-trace [--top N] <trace.json>\n"
               "\n"
               "Summarizes a Chrome/Perfetto trace_event file written by\n"
               "leapfrog-cli --trace-out or leapfrog-serve --trace-out:\n"
               "per-category totals, the top span names by total time, and\n"
               "p50/p95/p99 solver-query latency.\n");
}

struct SpanAgg {
  uint64_t Count = 0;
  uint64_t TotalMicros = 0;
  uint64_t MaxMicros = 0;
};

/// An open 'B' event waiting for its same-thread 'E'.
struct OpenSpan {
  std::string Name;
  std::string Category;
  uint64_t TsMicros = 0;
};

uint64_t percentile(const std::vector<uint64_t> &Sorted, double Q) {
  if (Sorted.empty())
    return 0;
  size_t Rank = size_t(Q * double(Sorted.size() - 1) + 0.5);
  if (Rank >= Sorted.size())
    Rank = Sorted.size() - 1;
  return Sorted[Rank];
}

} // namespace

int main(int Argc, char **Argv) {
  size_t TopN = 10;
  const char *Path = nullptr;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--top") && I + 1 < Argc) {
      TopN = size_t(std::strtoull(Argv[++I], nullptr, 10));
    } else if (!Path) {
      Path = Argv[I];
    } else {
      usage();
      return 2;
    }
  }
  if (!Path) {
    usage();
    return 2;
  }

  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    std::fprintf(stderr, "leapfrog-trace: cannot read '%s'\n", Path);
    return 2;
  }
  std::ostringstream Ss;
  Ss << In.rdbuf();

  serve::Json Doc;
  std::string Err;
  if (!serve::Json::parse(Ss.str(), Doc, &Err)) {
    std::fprintf(stderr, "leapfrog-trace: '%s' is not valid JSON: %s\n",
                 Path, Err.c_str());
    return 1;
  }
  // Both container forms are standard: {"traceEvents":[...]} and a bare
  // top-level array.
  const serve::Json &Events = Doc.isObject() ? Doc.get("traceEvents") : Doc;
  if (!Events.isArray()) {
    std::fprintf(stderr, "leapfrog-trace: '%s' has no traceEvents array\n",
                 Path);
    return 1;
  }

  std::map<uint64_t, std::vector<OpenSpan>> Open; // tid -> span stack
  std::map<uint64_t, std::string> ThreadNames;
  std::map<std::string, SpanAgg> ByName;
  std::map<std::string, SpanAgg> ByCategory;
  std::vector<uint64_t> SolveMicros;
  size_t Unbalanced = 0;
  uint64_t FirstTs = ~uint64_t(0), LastTs = 0;

  auto RecordSpan = [&](const std::string &Name, const std::string &Cat,
                        uint64_t Micros) {
    SpanAgg &N = ByName[Name];
    ++N.Count;
    N.TotalMicros += Micros;
    N.MaxMicros = std::max(N.MaxMicros, Micros);
    SpanAgg &C = ByCategory[Cat.empty() ? "(none)" : Cat];
    ++C.Count;
    C.TotalMicros += Micros;
    C.MaxMicros = std::max(C.MaxMicros, Micros);
    if (Name == "solver.query")
      SolveMicros.push_back(Micros);
  };

  for (const serve::Json &E : Events.items()) {
    if (!E.isObject())
      continue;
    const std::string Ph = E.getString("ph");
    const uint64_t Tid = E.getUnsigned("tid", 0);
    const uint64_t Ts = E.getUnsigned("ts", 0);
    if (Ph == "B" || Ph == "E" || Ph == "X" || Ph == "i") {
      FirstTs = std::min(FirstTs, Ts);
      LastTs = std::max(LastTs, Ts);
    }
    if (Ph == "M") {
      if (E.getString("name") == "thread_name")
        ThreadNames[Tid] = E.get("args").getString("name");
    } else if (Ph == "B") {
      OpenSpan S;
      S.Name = E.getString("name");
      S.Category = E.getString("cat");
      S.TsMicros = Ts;
      Open[Tid].push_back(std::move(S));
    } else if (Ph == "E") {
      std::vector<OpenSpan> &Stack = Open[Tid];
      if (Stack.empty()) {
        ++Unbalanced;
        continue;
      }
      OpenSpan S = std::move(Stack.back());
      Stack.pop_back();
      RecordSpan(S.Name, S.Category, Ts >= S.TsMicros ? Ts - S.TsMicros : 0);
    } else if (Ph == "X") {
      RecordSpan(E.getString("name"), E.getString("cat"),
                 E.getUnsigned("dur", 0));
    }
  }
  for (const auto &KV : Open)
    Unbalanced += KV.second.size();

  if (FirstTs > LastTs)
    FirstTs = LastTs = 0;
  std::printf("trace: %s\n", Path);
  std::printf("  wall span: %.3f ms, threads: %zu\n",
              double(LastTs - FirstTs) / 1e3, Open.size());
  if (!ThreadNames.empty()) {
    std::printf("  tracks:");
    for (const auto &KV : ThreadNames)
      std::printf(" %llu=%s", (unsigned long long)KV.first,
                  KV.second.c_str());
    std::printf("\n");
  }
  if (Unbalanced) {
    std::fprintf(stderr, "leapfrog-trace: %zu unbalanced begin/end events\n",
                 Unbalanced);
    return 1;
  }

  std::printf("\nper-category totals:\n");
  std::printf("  %-12s %10s %14s %14s\n", "category", "spans", "total ms",
              "max ms");
  for (const auto &KV : ByCategory)
    std::printf("  %-12s %10llu %14.3f %14.3f\n", KV.first.c_str(),
                (unsigned long long)KV.second.Count,
                double(KV.second.TotalMicros) / 1e3,
                double(KV.second.MaxMicros) / 1e3);

  std::printf("\ntop spans by total time:\n");
  std::printf("  %-24s %10s %14s %12s %12s\n", "name", "count", "total ms",
              "mean us", "max us");
  std::vector<std::pair<std::string, SpanAgg>> Ranked(ByName.begin(),
                                                      ByName.end());
  std::sort(Ranked.begin(), Ranked.end(), [](const auto &A, const auto &B) {
    return A.second.TotalMicros > B.second.TotalMicros;
  });
  for (size_t I = 0; I < Ranked.size() && I < TopN; ++I) {
    const SpanAgg &A = Ranked[I].second;
    std::printf("  %-24s %10llu %14.3f %12.1f %12llu\n",
                Ranked[I].first.c_str(), (unsigned long long)A.Count,
                double(A.TotalMicros) / 1e3,
                A.Count ? double(A.TotalMicros) / double(A.Count) : 0.0,
                (unsigned long long)A.MaxMicros);
  }

  if (!SolveMicros.empty()) {
    std::sort(SolveMicros.begin(), SolveMicros.end());
    std::printf("\nsolver-query latency (%zu queries):\n",
                SolveMicros.size());
    std::printf("  p50 %llu us, p95 %llu us, p99 %llu us, max %llu us\n",
                (unsigned long long)percentile(SolveMicros, 0.50),
                (unsigned long long)percentile(SolveMicros, 0.95),
                (unsigned long long)percentile(SolveMicros, 0.99),
                (unsigned long long)SolveMicros.back());
  }

  // Pipelining effectiveness (parallel engine traces only). The two
  // scheduling modes leave distinct span signatures:
  //
  //   pipelined (default) — epoch.wait (merge thread blocked on the
  //     in-flight decide) + epoch.merge (sequential replay, running
  //     while the *next* chunk's decide is already in flight);
  //   barrier (--no-pipeline) — epoch.parallel (launch + full wait)
  //     + epoch.merge (workers idle throughout).
  //
  // On the merge thread's critical path only waits and merges appear,
  // so merge/(merge+wait) is exactly the share of that path during
  // which worker decide could proceed concurrently — the number that
  // makes a merge-dominated (stall-bound) run visible from the trace
  // file alone. In barrier mode no merge overlaps anything; the
  // exposed merge total is printed as-is for comparison.
  auto Total = [&](const char *Name) -> const SpanAgg * {
    auto It = ByName.find(Name);
    return It == ByName.end() ? nullptr : &It->second;
  };
  const SpanAgg *Decide = Total("epoch.parallel");
  const SpanAgg *Merge = Total("epoch.merge");
  const SpanAgg *Wait = Total("epoch.wait");
  if (Merge && (Decide || Wait)) {
    const uint64_t MergeUs = Merge->TotalMicros;
    std::printf("\npipelining (parallel engine):\n");
    if (Wait) {
      const uint64_t WaitUs = Wait->TotalMicros;
      std::printf("  pipelined: %llu epochs, decide-wait %.3f ms, "
                  "merge %.3f ms\n",
                  (unsigned long long)Wait->Count, double(WaitUs) / 1e3,
                  double(MergeUs) / 1e3);
      if (MergeUs + WaitUs > 0)
        std::printf("  merge overlapped with in-flight decide: %.1f%% of "
                    "the %.3f ms merge-thread critical path\n",
                    double(MergeUs) / double(MergeUs + WaitUs) * 100.0,
                    double(MergeUs + WaitUs) / 1e3);
    } else {
      std::printf("  barrier (--no-pipeline): %llu epochs, decide %.3f ms, "
                  "merge %.3f ms fully exposed (workers idle)\n",
                  (unsigned long long)Decide->Count,
                  double(Decide->TotalMicros) / 1e3, double(MergeUs) / 1e3);
    }
  }
  return 0;
}
