//===- leapfrog-certcheck.cpp - Standalone certificate verifier -----------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The independent verifier for LFCERT certificates — the analogue of
// handing a Leapfrog proof term to the Coq kernel (§6.4). This binary
// links ONLY cert/CertFormat, cert/CertVerify and support/Compress (the
// build enforces it: no leapfrog library target in its link line), so
// accepting a certificate never depends on the solver, checker or
// parallel engine that produced it.
//
//   leapfrog-certcheck [options] [file]
//
//   file                 certificate path, raw or LFCZ1-compressed;
//                        "-" or no argument reads stdin
//   --fingerprint HEX    require the certificate to be pinned to HEX
//   --quiet              suppress the acceptance summary on stdout
//
// Exit status: 0 = accepted, 1 = rejected (diagnostic on stderr),
// 2 = usage or I/O error.
//
//===----------------------------------------------------------------------===//

#include "cert/CertVerify.h"

#include <cstdio>
#include <cstring>
#include <string>

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--fingerprint HEX] [--quiet] [file|-]\n", Argv0);
  return 2;
}

bool readAll(std::FILE *F, std::string &Out) {
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  return !std::ferror(F);
}

} // namespace

int main(int Argc, char **Argv) {
  leapfrog::cert::VerifyOptions Options;
  const char *Path = nullptr;
  bool Quiet = false;

  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strcmp(Arg, "--fingerprint") == 0) {
      if (I + 1 >= Argc)
        return usage(Argv[0]);
      Options.ExpectFingerprintHex = Argv[++I];
    } else if (std::strcmp(Arg, "--quiet") == 0) {
      Quiet = true;
    } else if (std::strcmp(Arg, "--help") == 0) {
      usage(Argv[0]);
      return 0;
    } else if (Arg[0] == '-' && Arg[1] != '\0') {
      std::fprintf(stderr, "%s: unknown option '%s'\n", Argv[0], Arg);
      return usage(Argv[0]);
    } else if (Path) {
      std::fprintf(stderr, "%s: more than one input file\n", Argv[0]);
      return usage(Argv[0]);
    } else {
      Path = Arg;
    }
  }

  std::string Payload;
  if (!Path || std::strcmp(Path, "-") == 0) {
    if (!readAll(stdin, Payload)) {
      std::fprintf(stderr, "%s: error reading stdin\n", Argv[0]);
      return 2;
    }
  } else {
    std::FILE *F = std::fopen(Path, "rb");
    if (!F) {
      std::fprintf(stderr, "%s: cannot open '%s'\n", Argv[0], Path);
      return 2;
    }
    bool Ok = readAll(F, Payload);
    std::fclose(F);
    if (!Ok) {
      std::fprintf(stderr, "%s: error reading '%s'\n", Argv[0], Path);
      return 2;
    }
  }

  leapfrog::cert::VerifyResult R =
      leapfrog::cert::verifyCertificate(Payload, Options);
  if (!R.Ok) {
    std::fprintf(stderr, "leapfrog-certcheck: REJECTED: %s\n",
                 R.Diagnostic.c_str());
    return 1;
  }
  if (!Quiet)
    std::printf("leapfrog-certcheck: ACCEPTED fingerprint=%s conjuncts=%zu "
                "streams=%zu goals=%zu unsat=%zu lemmas=%zu inputs=%zu "
                "deletions=%zu (skipped %zu)\n",
                R.FingerprintHex.c_str(), R.Stats.RelationConjuncts,
                R.Stats.Streams, R.Stats.Goals, R.Stats.UnsatGoals,
                R.Stats.Lemmas, R.Stats.Inputs, R.Stats.Deletions,
                R.Stats.DeletionsSkipped);
  return 0;
}
