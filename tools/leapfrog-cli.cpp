//===- leapfrog-cli.cpp - Command-line equivalence checker -----------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The push-button interface the paper's §7.3 envisions for downstream users
// ("parser equivalence proofs in Leapfrog are fully automatic and
// push-button"): point the tool at two parsers in the textual DSL and it
// decides language equivalence, optionally replaying the certificate and
// certifying every solver answer with DRUP proofs.
//
//   leapfrog-cli left.p4a q1 right.p4a q3 [options]
//   leapfrog-cli --file left.lfp right.lfp [options]
//
// The --file form takes two surface-syntax parsers (docs/FRONTEND.md):
// each file's `entry` declaration names the start state, and the programs
// are elaborated (subparser inlining, stack unrolling, lookahead
// lowering) before the same checker runs. Every option works identically
// in both forms.
//
// Structurally, the tool is a one-shot client of the same API the
// long-running service (leapfrog-serve) uses: build a core::CheckRequest,
// run it through a core::Engine. The --file path in particular is
// byte-for-byte the service's request path — checkRequestFromSurface —
// so a pair that checks here answers identically over the wire.
//
// Exit codes: 0 equivalent, 1 not equivalent, 2 resource limit, 3 usage or
// input error (including an unresolvable --backend spec).
//
//===----------------------------------------------------------------------===//

#include "core/CertificateIo.h"
#include "core/Engine.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "p4a/Parser.h"
#include "serve/Json.h"
#include "smt/SmtLibSolver.h"
#include "smt/Solver.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace leapfrog;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: leapfrog-cli <left.p4a> <left-state> <right.p4a> "
      "<right-state> [options]\n"
      "       leapfrog-cli --file <left.lfp> <right.lfp> [options]\n"
      "\n"
      "Decides whether the two start states accept the same packets for\n"
      "every initial store (paper §4), printing the verdict and search\n"
      "statistics. With --file, both parsers are written in the surface\n"
      "syntax (docs/FRONTEND.md) — header stacks, subparser calls and\n"
      "lookahead included — and each file's `entry` declaration names\n"
      "the start state; the programs are elaborated to plain automata\n"
      "before the same checker runs.\n"
      "\n"
      "search options:\n"
      "  --no-leaps         disable multi-step weakest preconditions "
      "(§5.2)\n"
      "  --no-reach         disable template reachability pruning (§5.1)\n"
      "  --replay           re-validate the equivalence certificate after\n"
      "                     the search (independent of the search code)\n"
      "  --jobs N           worker threads for the parallel frontier\n"
      "                     engine (default 1 = the sequential loop).\n"
      "                     Verdict, certificate and search trace are\n"
      "                     identical for every N; only wall-clock\n"
      "                     changes. Each worker gets its own solver\n"
      "                     and session set (for external backends, its\n"
      "                     own solver process)\n"
      "  --no-pipeline      disable the skip-ahead merge: with --jobs,\n"
      "                     the next chunk's parallel decide normally\n"
      "                     overlaps the current chunk's sequential\n"
      "                     merge; this restores the strict barrier.\n"
      "                     Decisions are identical either way\n"
      "  --goal-batch N     share one solver round-trip across up to N\n"
      "                     same-guard entailment goals (default 1 =\n"
      "                     one query per goal). Answers are identical;\n"
      "                     only the round-trip count drops — see the\n"
      "                     round_trips stat and docs/SOLVERS.md\n"
      "  --chunk N          conjuncts decided per epoch (default auto:\n"
      "                     max(32, jobs*8)); exposed for scheduling\n"
      "                     experiments, decisions do not depend on it\n"
      "\n"
      "backend options (see docs/SOLVERS.md):\n"
      "  --backend SPEC     solver backend: 'bitblast' (in-repo, the\n"
      "                     default), 'smtlib:CMD' (external SMT-LIB2\n"
      "                     process, e.g. 'smtlib:z3 -in'), or\n"
      "                     'crosscheck[:CMD]' (run both, abort on any\n"
      "                     sat/unsat divergence; CMD defaults to\n"
      "                     'z3 -in'), or 'portfolio:LEG,LEG[,...]'\n"
      "                     (race the legs per query, first answer wins,\n"
      "                     losers cancelled; e.g.\n"
      "                     'portfolio:bitblast,smtlib:z3 -in').\n"
      "                     --backend=SPEC also accepted. An\n"
      "                     unrecognized SPEC is a usage error (exit 3);\n"
      "                     a parseable SPEC whose binary is missing or\n"
      "                     failing degrades to bitblast per query, with\n"
      "                     a warning; external sat answers are\n"
      "                     model-validated, external unsat answers are\n"
      "                     trusted unless crosscheck is used (see the\n"
      "                     docs)\n"
      "  --ext-timeout N    per-reply deadline for the external solver,\n"
      "                     seconds (default 60); on expiry the process\n"
      "                     is killed and the query answered in-repo\n"
      "  --certify-smt      require a DRUP proof for every UNSAT solver\n"
      "                     answer, replayed by an independent checker.\n"
      "                     With an smtlib backend the run is promoted to\n"
      "                     crosscheck so the in-repo reference leg\n"
      "                     produces the proofs the external solver\n"
      "                     cannot\n"
      "\n"
      "budget options:\n"
      "  --max-iterations N worklist budget (default 1048576)\n"
      "  --max-seconds N    wall-clock budget (default unlimited)\n"
      "\n"
      "memory options (per incremental solver session; with --jobs,\n"
      "per worker session):\n"
      "  --max-learnts N    peak learned-clause bound; over it the\n"
      "                     session restarts from its premises\n"
      "  --max-arena-mb N   peak clause-arena bound (MB)\n"
      "\n"
      "output options:\n"
      "  --print            echo both parsers back (parsed form)\n"
      "  --dump-cert        print the certificate (the conjuncts of the\n"
      "                     symbolic bisimulation) on success\n"
      "  --emit-cert FILE   run with proof capture and write a complete\n"
      "                     LFCERT certificate (relation + per-goal DRUP\n"
      "                     slices, pinned to the pair fingerprint) to\n"
      "                     FILE on an equivalent verdict; verify it with\n"
      "                     leapfrog-certcheck, which shares no code with\n"
      "                     the checker ('-' writes to stdout)\n"
      "  --trace            print every Skip/Extend step of the search\n"
      "                     (the paper's Figure 4 derivation)\n"
      "  --json             print one machine-readable JSON object on\n"
      "                     stdout (verdict, exit code, stats, metrics\n"
      "                     snapshot) instead of the human-format block;\n"
      "                     the exit code is unchanged\n"
      "  --trace-out FILE   record a Chrome/Perfetto trace_event timeline\n"
      "                     of the run (checker phases, per-worker solver\n"
      "                     queries, epoch barriers) and write it to FILE;\n"
      "                     open it at https://ui.perfetto.dev or summarize\n"
      "                     it with leapfrog-trace. Purely observational:\n"
      "                     verdict, stats and certificate bytes are\n"
      "                     identical with or without it\n"
      "  --quiet            verdict only\n");
}

bool readFile(const char *Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Ss;
  Ss << In.rdbuf();
  Out = Ss.str();
  return true;
}

/// The classic .p4a path: parse the core DSL, resolve the named state.
bool loadP4a(const char *Path, const char *StateName, p4a::Automaton &Aut,
             p4a::StateRef &Start) {
  std::string Source;
  if (!readFile(Path, Source)) {
    std::fprintf(stderr, "leapfrog-cli: cannot read '%s'\n", Path);
    return false;
  }
  p4a::ParseResult Parsed = p4a::parseAutomaton(Source);
  if (!Parsed.ok()) {
    std::fprintf(stderr, "leapfrog-cli: errors in '%s':\n", Path);
    for (const std::string &E : Parsed.Errors)
      std::fprintf(stderr, "  %s\n", E.c_str());
    return false;
  }
  Aut = std::move(Parsed.Aut);
  auto Id = Aut.findState(StateName);
  if (!Id) {
    std::fprintf(stderr, "leapfrog-cli: '%s' has no state named '%s'\n",
                 Path, StateName);
    return false;
  }
  Start = p4a::StateRef::normal(*Id);
  return true;
}

const char *verdictName(core::Verdict V) {
  switch (V) {
  case core::Verdict::Equivalent:
    return "equivalent";
  case core::Verdict::NotEquivalent:
    return "not_equivalent";
  case core::Verdict::ResourceLimit:
    return "resource_limit";
  case core::Verdict::BadRequest:
    return "bad_request";
  }
  return "bad_request";
}

/// The --json result block: verdict + exit code, the full CheckStats
/// (field names match the serve protocol's stats object, so a script can
/// consume either source with one decoder), the metrics-registry
/// snapshot, and the replay outcome when --replay ran.
std::string resultJson(const core::CheckResult &Res, int ExitCode,
                       bool ReplayRan, bool ReplayValid,
                       size_t ReplayObligations,
                       const std::string &ReplayFailure) {
  serve::Json J = serve::Json::object();
  J.set("verdict", serve::Json::str(verdictName(Res.V)));
  J.set("exit_code", serve::Json::integer(ExitCode));
  if (!Res.FailureReason.empty())
    J.set("failure_reason", serve::Json::str(Res.FailureReason));

  const core::CheckStats &S = Res.Stats;
  serve::Json Stats = serve::Json::object();
  Stats.set("iterations", serve::Json::unsignedInt(S.Iterations));
  Stats.set("extends", serve::Json::unsignedInt(S.Extends));
  Stats.set("skips", serve::Json::unsignedInt(S.Skips));
  Stats.set("smt_queries", serve::Json::unsignedInt(S.SmtQueries));
  Stats.set("reach_pairs", serve::Json::unsignedInt(S.ReachPairs));
  Stats.set("templates_left", serve::Json::unsignedInt(S.TemplatesLeft));
  Stats.set("templates_right", serve::Json::unsignedInt(S.TemplatesRight));
  Stats.set("final_conjuncts", serve::Json::unsignedInt(S.FinalConjuncts));
  Stats.set("peak_frontier", serve::Json::unsignedInt(S.PeakFrontier));
  Stats.set("formula_nodes", serve::Json::unsignedInt(S.FormulaNodes));
  Stats.set("wall_micros", serve::Json::unsignedInt(S.WallMicros));
  Stats.set("solver_micros", serve::Json::unsignedInt(S.SolverMicros));
  J.set("stats", Stats);

  serve::Json Metrics;
  std::string SnapErr;
  if (serve::Json::parse(obs::metrics().snapshot().toJson(), Metrics,
                         &SnapErr))
    J.set("metrics", Metrics);

  if (ReplayRan) {
    serve::Json R = serve::Json::object();
    R.set("valid", serve::Json::boolean(ReplayValid));
    R.set("obligations", serve::Json::unsignedInt(ReplayObligations));
    if (!ReplayValid)
      R.set("failure_reason", serve::Json::str(ReplayFailure));
    J.set("replay", R);
  }
  return J.serialize();
}

} // namespace

int main(int Argc, char **Argv) {
  const bool FileMode = Argc >= 2 && !std::strcmp(Argv[1], "--file");
  if (FileMode ? Argc < 4 : Argc < 5) {
    usage();
    return 3;
  }
  const char *LeftPath = FileMode ? Argv[2] : Argv[1];
  const char *RightPath = FileMode ? Argv[3] : Argv[3];

  core::CheckOptions Options;
  bool Replay = false, Print = false, Quiet = false, DumpCert = false;
  bool CertifySmt = false;
  bool JsonOut = false;
  const char *EmitCertPath = nullptr;
  const char *TraceOutPath = nullptr;
  core::EngineConfig EngineCfg; // Backend spec + jobs: engine-level.
  int ExtTimeoutSec = 0;
  for (int I = FileMode ? 4 : 5; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (!std::strcmp(Arg, "--no-leaps")) {
      Options.UseLeaps = false;
    } else if (!std::strcmp(Arg, "--no-reach")) {
      Options.UseReachability = false;
    } else if (!std::strcmp(Arg, "--certify-smt")) {
      CertifySmt = true;
    } else if (!std::strcmp(Arg, "--backend") && I + 1 < Argc) {
      EngineCfg.Backend = Argv[++I];
    } else if (!std::strncmp(Arg, "--backend=", 10)) {
      EngineCfg.Backend = Arg + 10;
    } else if (!std::strcmp(Arg, "--ext-timeout") && I + 1 < Argc) {
      char *End = nullptr;
      long Val = std::strtol(Argv[++I], &End, 10);
      // Strict: a deadline the user typed must apply or the run must not
      // start. 86400 s also keeps the ms conversion far from overflow.
      if (!End || *End != '\0' || Val < 1 || Val > 86400) {
        std::fprintf(stderr,
                     "leapfrog-cli: --ext-timeout needs a whole number of "
                     "seconds in [1, 86400], got '%s'\n",
                     Argv[I]);
        return 3;
      }
      ExtTimeoutSec = int(Val);
    } else if (!std::strcmp(Arg, "--replay")) {
      Replay = true;
    } else if (!std::strcmp(Arg, "--print")) {
      Print = true;
    } else if (!std::strcmp(Arg, "--dump-cert")) {
      DumpCert = true;
    } else if (!std::strcmp(Arg, "--emit-cert") && I + 1 < Argc) {
      EmitCertPath = Argv[++I];
      Options.Certify = true;
    } else if (!std::strcmp(Arg, "--trace")) {
      Options.RecordTrace = true;
    } else if (!std::strcmp(Arg, "--json")) {
      JsonOut = true;
    } else if (!std::strcmp(Arg, "--trace-out") && I + 1 < Argc) {
      TraceOutPath = Argv[++I];
    } else if (!std::strcmp(Arg, "--quiet")) {
      Quiet = true;
    } else if (!std::strcmp(Arg, "--max-iterations") && I + 1 < Argc) {
      Options.MaxIterations = size_t(std::strtoull(Argv[++I], nullptr, 10));
    } else if (!std::strcmp(Arg, "--max-seconds") && I + 1 < Argc) {
      Options.MaxWallMicros =
          uint64_t(std::strtoull(Argv[++I], nullptr, 10)) * 1000000u;
    } else if (!std::strcmp(Arg, "--max-learnts") && I + 1 < Argc) {
      Options.Limits.MaxLearnts =
          size_t(std::strtoull(Argv[++I], nullptr, 10));
    } else if (!std::strcmp(Arg, "--max-arena-mb") && I + 1 < Argc) {
      Options.Limits.MaxArenaBytes =
          size_t(std::strtoull(Argv[++I], nullptr, 10)) * 1024u * 1024u;
    } else if (!std::strcmp(Arg, "--jobs") && I + 1 < Argc) {
      EngineCfg.Jobs = size_t(std::strtoull(Argv[++I], nullptr, 10));
      if (EngineCfg.Jobs < 1)
        EngineCfg.Jobs = 1;
    } else if (!std::strcmp(Arg, "--no-pipeline")) {
      Options.Pipeline = false;
    } else if (!std::strcmp(Arg, "--goal-batch") && I + 1 < Argc) {
      Options.GoalBatch = size_t(std::strtoull(Argv[++I], nullptr, 10));
      if (Options.GoalBatch < 1)
        Options.GoalBatch = 1;
    } else if (!std::strcmp(Arg, "--chunk") && I + 1 < Argc) {
      Options.Chunk = size_t(std::strtoull(Argv[++I], nullptr, 10));
    } else {
      std::fprintf(stderr, "leapfrog-cli: unknown option '%s'\n", Arg);
      usage();
      return 3;
    }
  }

  // DRUP certification needs the in-repo solver in the loop: a bare
  // external backend is promoted to the cross-checking pair, whose
  // reference leg produces (and replays) the proofs.
  if (CertifySmt && !EngineCfg.Backend.compare(0, 7, "smtlib:"))
    EngineCfg.Backend = "crosscheck:" + EngineCfg.Backend.substr(7);
  EngineCfg.Certify = Options.Certify;

  // Resolve the backend once, through the engine. A typo in the spec is
  // a usage error here (exit 3), never a silent bitblast run — the same
  // structured rejection leapfrog-serve hands its clients.
  std::string EngineErr;
  std::unique_ptr<core::Engine> Engine =
      core::Engine::create(EngineCfg, &EngineErr);
  if (!Engine) {
    std::fprintf(stderr, "leapfrog-cli: %s\n", EngineErr.c_str());
    usage();
    return 3;
  }
  smt::SmtSolver *Solver = &Engine->solver();
  auto *BitBlast = dynamic_cast<smt::BitBlastSolver *>(Solver);
  auto *External = dynamic_cast<smt::SmtLibSolver *>(Solver);
  auto *Cross = dynamic_cast<smt::CrossCheckSolver *>(Solver);
  if (Cross) {
    External = dynamic_cast<smt::SmtLibSolver *>(&Cross->external());
    if (!BitBlast)
      BitBlast = dynamic_cast<smt::BitBlastSolver *>(&Cross->reference());
  }
  if (CertifySmt) {
    if (!BitBlast) {
      // Unreachable through the spec grammar (every crosscheck reference
      // leg is bitblast), but a caller-supplied exotic backend should
      // fail loudly rather than run uncertified.
      std::fprintf(stderr,
                   "leapfrog-cli: --certify-smt found no in-repo solver to "
                   "produce DRUP proofs\n");
      return 3;
    }
    BitBlast->CertifyUnsat = true;
  }
  if (ExtTimeoutSec > 0) {
    if (!External) {
      std::fprintf(stderr, "leapfrog-cli: --ext-timeout needs an external "
                           "backend (--backend smtlib:... or "
                           "crosscheck...)\n");
      return 3;
    }
    External->config().QueryTimeoutMs = ExtTimeoutSec * 1000;
  }

  // Build the request. The --file path is the exact front door
  // leapfrog-serve uses for wire requests (checkRequestFromSurface);
  // the .p4a path assembles the same request struct from the core DSL.
  core::CheckRequest Req;
  if (FileMode) {
    std::string LeftText, RightText;
    if (!readFile(LeftPath, LeftText)) {
      std::fprintf(stderr, "leapfrog-cli: cannot read '%s'\n", LeftPath);
      return 3;
    }
    if (!readFile(RightPath, RightText)) {
      std::fprintf(stderr, "leapfrog-cli: cannot read '%s'\n", RightPath);
      return 3;
    }
    std::vector<std::string> Errors;
    if (!core::checkRequestFromSurface(LeftText, RightText, Options, Req,
                                       Errors, LeftPath, RightPath)) {
      std::fprintf(stderr, "leapfrog-cli: input rejected:\n");
      for (const std::string &E : Errors)
        std::fprintf(stderr, "  %s\n", E.c_str());
      return 3;
    }
  } else {
    p4a::Automaton Left, Right;
    p4a::StateRef LeftStart = p4a::StateRef::reject();
    p4a::StateRef RightStart = p4a::StateRef::reject();
    if (!loadP4a(LeftPath, Argv[2], Left, LeftStart) ||
        !loadP4a(RightPath, Argv[4], Right, RightStart))
      return 3;
    Req = core::makeLanguageEquivalenceRequest(
        std::move(Left), LeftStart, std::move(Right), RightStart, Options);
  }

  if (Print) {
    // In file mode this echoes the *elaborated* automata — the parsers
    // the checker actually compares, with stacks, calls and lookahead
    // compiled away.
    std::printf("-- %s --\n%s\n-- %s --\n%s\n", LeftPath,
                Req.Left.print().c_str(), RightPath,
                Req.Right.print().c_str());
  }

  // Tracing is installed just around the check (and the optional replay
  // below): the timeline answers "where did this run spend its time",
  // not "what did main() do". Decisions are unaffected — the sink only
  // records.
  std::unique_ptr<obs::TraceSink> Trace;
  if (TraceOutPath) {
    Trace = std::make_unique<obs::TraceSink>();
    obs::setTraceSink(Trace.get());
    obs::nameCurrentThread("main");
  }

  core::CheckResult Res = Engine->check(Req);

  if (Options.RecordTrace) {
    for (const core::TraceStep &T : Res.Trace) {
      const char *Kind = T.K == core::TraceStep::Kind::Skip ? "skip"
                         : T.K == core::TraceStep::Kind::Extend
                             ? "extend"
                             : "done";
      std::printf("%-6s %s\n", Kind,
                  T.Psi.str(Req.Left, Req.Right).c_str());
    }
  }
  if (DumpCert && Res.V == core::Verdict::Equivalent)
    std::printf("%s", Res.Certificate.str(Req.Left, Req.Right).c_str());

  if (EmitCertPath && Res.V == core::Verdict::Equivalent) {
    std::string CertText = core::serializeCertificate(
        Req.Left, Req.Right, Res.Certificate, Res.Proof.get(),
        core::requestFingerprint(Req).hex());
    if (!std::strcmp(EmitCertPath, "-")) {
      std::fwrite(CertText.data(), 1, CertText.size(), stdout);
    } else {
      std::ofstream CertOut(EmitCertPath,
                            std::ios::binary | std::ios::trunc);
      CertOut.write(CertText.data(), std::streamsize(CertText.size()));
      if (!CertOut) {
        std::fprintf(stderr, "leapfrog-cli: cannot write '%s'\n",
                     EmitCertPath);
        return 3;
      }
      if (!Quiet)
        std::printf("  certificate: %s (%zu bytes, %zu proof streams)\n",
                    EmitCertPath, CertText.size(),
                    Res.Proof ? Res.Proof->streamCount() : size_t(0));
    }
  }

  if (!JsonOut) {
    switch (Res.V) {
    case core::Verdict::Equivalent:
      std::printf("EQUIVALENT\n");
      break;
    case core::Verdict::NotEquivalent:
      std::printf("NOT EQUIVALENT\n");
      if (!Quiet)
        std::printf("  %s\n", Res.FailureReason.c_str());
      break;
    case core::Verdict::ResourceLimit:
      std::printf("RESOURCE LIMIT\n");
      if (!Quiet)
        std::printf("  %s\n", Res.FailureReason.c_str());
      break;
    case core::Verdict::BadRequest:
      std::printf("BAD REQUEST\n");
      if (!Quiet)
        std::printf("  %s\n", Res.FailureReason.c_str());
      break;
    }
  }

  if (!Quiet && !JsonOut) {
    std::printf(
        "  iterations %zu, conjuncts %zu, SMT queries %zu (%zu certified "
        "UNSAT, %zu solver round-trips), %.2f s\n",
        Res.Stats.Iterations, Res.Stats.FinalConjuncts,
        Res.Stats.SmtQueries,
        // DRUP certification lives in the in-repo solver; behind
        // crosscheck that is the reference leg, not the facade.
        size_t((BitBlast ? BitBlast->stats() : Solver->stats())
                   .CertifiedUnsat),
        size_t(Solver->stats().RoundTrips),
        double(Res.Stats.WallMicros) / 1e6);
    if (External) {
      const smt::SmtLibSolver::ExtStats &E = External->extStats();
      std::printf("  external solver '%s': %zu queries answered "
                  "externally, %zu in-repo fallbacks (%zu timeouts, %zu "
                  "EOFs, %zu protocol errors), %zu process spawns\n",
                  External->config().Argv.empty()
                      ? "<none>"
                      : External->config().Argv[0].c_str(),
                  size_t(E.ExternalQueries), size_t(E.FallbackQueries),
                  size_t(E.Timeouts), size_t(E.Eofs),
                  size_t(E.ProtocolErrors), size_t(E.Spawns));
    }
    if (Cross)
      std::printf("  cross-check: %zu queries compared, %zu divergences\n",
                  size_t(Cross->crossStats().Checked),
                  size_t(Cross->crossStats().Divergences));
  }

  bool ReplayRan = false, ReplayValid = true;
  size_t ReplayObligations = 0;
  std::string ReplayFailure;
  if (Replay && Res.V == core::Verdict::Equivalent) {
    core::ReplayResult R = core::replayCertificate(
        Req.Left, Req.Right, Res.Certificate, Solver);
    ReplayRan = true;
    ReplayValid = R.Valid;
    ReplayObligations = R.ObligationsChecked;
    ReplayFailure = R.FailureReason;
    if (!Quiet && !JsonOut)
      std::printf("  certificate replay: %s (%zu obligations)\n",
                  R.Valid ? "valid" : R.FailureReason.c_str(),
                  R.ObligationsChecked);
  }

  if (Trace) {
    obs::setTraceSink(nullptr);
    std::string TraceErr;
    if (!Trace->writeChromeJson(TraceOutPath, &TraceErr)) {
      std::fprintf(stderr, "leapfrog-cli: %s\n", TraceErr.c_str());
      return 3;
    }
  }

  int ExitCode = 2;
  switch (Res.V) {
  case core::Verdict::Equivalent:
    ExitCode = 0;
    break;
  case core::Verdict::NotEquivalent:
    ExitCode = 1;
    break;
  case core::Verdict::ResourceLimit:
    ExitCode = 2;
    break;
  case core::Verdict::BadRequest:
    ExitCode = 3;
    break;
  }
  if (!ReplayValid)
    ExitCode = 2;

  if (JsonOut)
    std::printf("%s\n",
                resultJson(Res, ExitCode, ReplayRan, ReplayValid,
                           ReplayObligations, ReplayFailure)
                    .c_str());

  return ExitCode;
}
