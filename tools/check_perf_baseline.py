#!/usr/bin/env python3
"""Gate bench_smt's perf-smoke output against the committed baseline.

Usage: check_perf_baseline.py [--tolerance X] CURRENT.json BASELINE.json

Both files are bench_smt --json outputs (a list of per-(study, mode)
records). The gate is deliberately narrow: for every incremental record
present in both files, the smoke workload's peak learned-clause count
(`peak_learnts`) must not exceed `--tolerance` times the committed
baseline (default 2.0). Peak clause counts are a property of the solver's
clause-DB management, not of runner speed, so — unlike latency — they are
stable enough on shared CI runners to gate on. Everything else in the
JSON is archived for bisection, not gated, but on failure the full
per-metric diff of the offending record is printed so the regression can
be read straight off the CI log.

A study present only in the current output (new workload) or only in the
baseline (retired workload) is reported but does not fail the gate; the
baseline should be refreshed in the same PR that changes the workload.
"""

import argparse
import json
import sys

# The deterministic clause-DB metrics worth showing in a failure diff, in
# display order. Only peak_learnts is *gated*; the rest give the reader
# the shape of the regression (e.g. "deletion stopped running" shows up
# as clauses_deleted cratering while peak_learnts doubles).
DIFF_METRICS = [
    "peak_learnts",
    "arena_peak_bytes",
    "clauses_deleted",
    "reduce_db_runs",
    "session_restarts",
    "session_premises",
    "premise_cache_hits",
    "queries",
]


def key(record):
    return (record["study"], record["mode"])


def print_metric_diff(cur, base):
    """Readable per-metric comparison of one (study, mode) record."""
    print(f"    {'metric':<20} {'baseline':>12} {'current':>12} {'delta':>10}")
    for metric in DIFF_METRICS:
        if metric not in cur and metric not in base:
            continue
        b = base.get(metric, 0)
        c = cur.get(metric, 0)
        if b:
            delta = f"{100.0 * (c - b) / b:+.1f}%"
        else:
            delta = "new" if c else "-"
        print(f"    {metric:<20} {b:>12} {c:>12} {delta:>10}")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="allowed peak_learnts growth factor over the baseline "
        "(default: 2.0); an absolute slack of +8 clauses always applies "
        "so near-zero baselines don't gate on noise",
    )
    parser.add_argument("current", help="bench_smt --json output to check")
    parser.add_argument("baseline", help="committed baseline JSON")
    args = parser.parse_args()

    if args.tolerance <= 0:
        parser.error("--tolerance must be positive")

    with open(args.current) as f:
        current = {key(r): r for r in json.load(f)}
    with open(args.baseline) as f:
        baseline = {key(r): r for r in json.load(f)}

    failures = []
    for k, cur in sorted(current.items()):
        if cur["mode"] != "incremental":
            continue
        base = baseline.get(k)
        if base is None:
            print(f"NOTE: {k[0]} has no baseline entry (new workload?)")
            continue
        cur_peak = cur["peak_learnts"]
        base_peak = base["peak_learnts"]
        limit = max(base_peak * args.tolerance, base_peak + 8)
        status = "ok" if cur_peak <= limit else "REGRESSION"
        print(
            f"{k[0]:<28} peak_learnts {base_peak:>6} -> {cur_peak:>6} "
            f"(limit {limit:.0f})  [{status}]"
        )
        if cur_peak > limit:
            failures.append(k[0])
            print_metric_diff(cur, base)
    for k in sorted(baseline.keys() - current.keys()):
        if baseline[k]["mode"] == "incremental":
            print(f"NOTE: {k[0]} only in baseline (retired workload?)")

    if failures:
        print(
            f"FAIL: peak learned-clause count regressed >"
            f"{args.tolerance}x on: {', '.join(failures)}"
        )
        return 1
    print(f"perf baseline check passed (tolerance {args.tolerance}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
