#!/usr/bin/env python3
"""Gate bench_smt's perf-smoke output against the committed baseline.

Usage: check_perf_baseline.py CURRENT.json BASELINE.json

Both files are bench_smt --json outputs (a list of per-(study, mode)
records). The gate is deliberately narrow: for every incremental record
present in both files, the smoke workload's peak learned-clause count
(`peak_learnts`) must not exceed 2x the committed baseline. Peak clause
counts are a property of the solver's clause-DB management, not of runner
speed, so — unlike latency — they are stable enough on shared CI runners
to gate on. Everything else in the JSON is archived for bisection, not
gated.

A study present only in the current output (new workload) or only in the
baseline (retired workload) is reported but does not fail the gate; the
baseline should be refreshed in the same PR that changes the workload.
"""

import json
import sys

REGRESSION_FACTOR = 2.0


def key(record):
    return (record["study"], record["mode"])


def main():
    if len(sys.argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        current = {key(r): r for r in json.load(f)}
    with open(sys.argv[2]) as f:
        baseline = {key(r): r for r in json.load(f)}

    failures = []
    for k, cur in sorted(current.items()):
        if cur["mode"] != "incremental":
            continue
        base = baseline.get(k)
        if base is None:
            print(f"NOTE: {k[0]} has no baseline entry (new workload?)")
            continue
        cur_peak = cur["peak_learnts"]
        base_peak = base["peak_learnts"]
        limit = max(base_peak * REGRESSION_FACTOR, base_peak + 8)
        status = "ok" if cur_peak <= limit else "REGRESSION"
        print(
            f"{k[0]:<28} peak_learnts {base_peak:>6} -> {cur_peak:>6} "
            f"(limit {limit:.0f})  arena {base['arena_peak_bytes']:>8} -> "
            f"{cur['arena_peak_bytes']:>8}  [{status}]"
        )
        if cur_peak > limit:
            failures.append(k[0])
    for k in sorted(baseline.keys() - current.keys()):
        if baseline[k]["mode"] == "incremental":
            print(f"NOTE: {k[0]} only in baseline (retired workload?)")

    if failures:
        print(
            f"FAIL: peak learned-clause count regressed >"
            f"{REGRESSION_FACTOR}x on: {', '.join(failures)}"
        )
        return 1
    print("perf baseline check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
