#!/usr/bin/env python3
"""Gate bench_smt's perf-smoke output against the committed baseline.

Usage: check_perf_baseline.py [--tolerance X] [--latency-tolerance Y]
                              CURRENT.json BASELINE.json

Both files are bench_smt --json outputs. The current format is an object
`{"records": [...], "metrics": {...}}` where `records` holds the
per-(study, mode) measurements and `metrics` is the obs::Metrics
process snapshot (docs/OBSERVABILITY.md); the older bare-array form is
still accepted so historical baselines keep working.

Three gates run, all deliberately narrow:

 1. Clause DB: for every incremental record present in both files, the
    smoke workload's peak learned-clause count (`peak_learnts`) must not
    exceed `--tolerance` times the committed baseline (default 2.0).
    Peak clause counts are a property of the solver's clause-DB
    management, not of runner speed, so they are stable enough on shared
    CI runners to gate on.
 2. Solve latency: when both files carry a metrics snapshot, the p95 of
    the `smt.solve_micros` histogram must not exceed `--latency-tolerance`
    times the baseline p95 (default 5.0), with an absolute slack of
    +2000us so microsecond-scale baselines never gate on scheduler
    noise. The wide multiplier is intentional — this catches order-of-
    magnitude latency regressions (an accidental O(n^2) in the hot
    path), not runner jitter.
 3. Batched round-trips: for every `batched`-mode record present in
    both files, the physical check-sat round-trip count (`round_trips`)
    must not exceed `--tolerance` times the baseline. Round-trips are
    fully deterministic (answers decide the batch refinement layers,
    and answers are schedule-independent), so a creep back toward the
    query count means the --goal-batch machinery silently stopped
    sharing rounds — exactly the regression this gate exists to catch.

Everything else in the JSON is archived for bisection, not gated, but on
failure the full per-metric diff of the offending record is printed so
the regression can be read straight off the CI log.

A study present only in the current output (new workload) or only in the
baseline (retired workload) is reported but does not fail the gate; the
baseline should be refreshed in the same PR that changes the workload.
"""

import argparse
import json
import sys

# The deterministic clause-DB metrics worth showing in a failure diff, in
# display order. Only peak_learnts is *gated*; the rest give the reader
# the shape of the regression (e.g. "deletion stopped running" shows up
# as clauses_deleted cratering while peak_learnts doubles).
DIFF_METRICS = [
    "peak_learnts",
    "arena_peak_bytes",
    "clauses_deleted",
    "reduce_db_runs",
    "session_restarts",
    "session_premises",
    "premise_cache_hits",
    "queries",
    "round_trips",
]

# The histogram the latency gate reads from the metrics snapshot.
LATENCY_HISTOGRAM = "smt.solve_micros"


def key(record):
    return (record["study"], record["mode"])


def load(path):
    """Returns (records, metrics-or-None) from either JSON form."""
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, list):  # pre-metrics bare-array form
        return doc, None
    return doc["records"], doc.get("metrics")


def solve_p95(metrics):
    """p95 upper bound of the solve-latency histogram, or None."""
    if not metrics:
        return None
    hist = metrics.get("histograms", {}).get(LATENCY_HISTOGRAM)
    if not hist or not hist.get("count"):
        return None
    return hist["p95"]


def print_metric_diff(cur, base):
    """Readable per-metric comparison of one (study, mode) record."""
    print(f"    {'metric':<20} {'baseline':>12} {'current':>12} {'delta':>10}")
    for metric in DIFF_METRICS:
        if metric not in cur and metric not in base:
            continue
        b = base.get(metric, 0)
        c = cur.get(metric, 0)
        if b:
            delta = f"{100.0 * (c - b) / b:+.1f}%"
        else:
            delta = "new" if c else "-"
        print(f"    {metric:<20} {b:>12} {c:>12} {delta:>10}")


def main():
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="allowed peak_learnts growth factor over the baseline "
        "(default: 2.0); an absolute slack of +8 clauses always applies "
        "so near-zero baselines don't gate on noise",
    )
    parser.add_argument(
        "--latency-tolerance",
        type=float,
        default=5.0,
        help="allowed smt.solve_micros p95 growth factor over the "
        "baseline (default: 5.0); an absolute slack of +2000us always "
        "applies so microsecond-scale baselines don't gate on noise",
    )
    parser.add_argument("current", help="bench_smt --json output to check")
    parser.add_argument("baseline", help="committed baseline JSON")
    args = parser.parse_args()

    if args.tolerance <= 0:
        parser.error("--tolerance must be positive")
    if args.latency_tolerance <= 0:
        parser.error("--latency-tolerance must be positive")

    current_records, current_metrics = load(args.current)
    baseline_records, baseline_metrics = load(args.baseline)
    current = {key(r): r for r in current_records}
    baseline = {key(r): r for r in baseline_records}

    # (mode, gated metric, absolute slack): the per-record gates. The
    # slack keeps near-zero baselines from gating on noise; round_trips
    # gets a smaller one because it is deterministic.
    RECORD_GATES = {
        "incremental": ("peak_learnts", 8),
        "batched": ("round_trips", 4),
    }
    failures = []
    for k, cur in sorted(current.items()):
        gate = RECORD_GATES.get(cur["mode"])
        if gate is None:
            continue
        metric, slack = gate
        base = baseline.get(k)
        if base is None:
            print(f"NOTE: {k[0]}/{cur['mode']} has no baseline entry "
                  f"(new workload?)")
            continue
        if metric not in base:
            print(f"NOTE: {k[0]}/{cur['mode']} baseline predates the "
                  f"{metric} gate; refresh the baseline")
            continue
        cur_val = cur[metric]
        base_val = base[metric]
        limit = max(base_val * args.tolerance, base_val + slack)
        status = "ok" if cur_val <= limit else "REGRESSION"
        print(
            f"{k[0]:<28} {metric} {base_val:>6} -> {cur_val:>6} "
            f"(limit {limit:.0f})  [{status}]"
        )
        if cur_val > limit:
            failures.append(f"{k[0]} {metric}")
            print_metric_diff(cur, base)
    for k in sorted(baseline.keys() - current.keys()):
        if baseline[k]["mode"] in RECORD_GATES:
            print(f"NOTE: {k[0]}/{baseline[k]['mode']} only in baseline "
                  f"(retired workload?)")

    cur_p95 = solve_p95(current_metrics)
    base_p95 = solve_p95(baseline_metrics)
    if cur_p95 is not None and base_p95 is not None:
        limit = max(base_p95 * args.latency_tolerance, base_p95 + 2000)
        status = "ok" if cur_p95 <= limit else "REGRESSION"
        print(
            f"{'(all smoke queries)':<28} solve p95us {base_p95:>6} -> "
            f"{cur_p95:>6} (limit {limit:.0f})  [{status}]"
        )
        if cur_p95 > limit:
            failures.append("solve-latency p95")
    elif cur_p95 is None:
        print("NOTE: current output has no metrics snapshot; latency gate skipped")
    else:
        print("NOTE: baseline has no metrics snapshot; latency gate skipped")

    if failures:
        print(
            f"FAIL: regressed beyond tolerance on: {', '.join(failures)}"
        )
        return 1
    print(
        f"perf baseline check passed (tolerance {args.tolerance}x, "
        f"latency {args.latency_tolerance}x)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
