//===- bench_table2.cpp - Reproduces Table 2 ------------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Regenerates the paper's Table 2: every Utility and Applicability case
// study, with the same columns (States, Branched bits, Total bits,
// Runtime, Memory) plus this implementation's search statistics. The
// paper's absolute numbers come from Coq running proof search with
// 400 GB-class memory; ours come from a native C++ checker, so the
// comparable signal is the *shape*: which studies verify, and the
// relative cost ordering. docs/EXPERIMENTS.md records paper-vs-measured.
//
// The External filtering and Relational verification rows use the
// qualified/custom initial relations of §7.1; the Translation Validation
// row runs the full Figure 8 pipeline (compile → tables → back-translate
// → equivalence). Two negative rows reproduce the §7.1 sanity check: the
// checker must *fail* on inequivalent inputs.
//
//===----------------------------------------------------------------------===//

#include "core/CertificateIo.h"
#include "core/Checker.h"
#include "obs/Trace.h"
#include "parsers/CaseStudies.h"
#include "pgen/TranslationValidation.h"
#include "smt/ProofLog.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sys/resource.h>

using namespace leapfrog;
using namespace leapfrog::core;

namespace {

double maxRssMb() {
  struct rusage Usage;
  getrusage(RUSAGE_SELF, &Usage);
  return double(Usage.ru_maxrss) / 1024.0;
}

struct Row {
  std::string Name;
  std::string Category;
  size_t States = 0;
  size_t Branched = 0;
  size_t Total = 0;
  bool ExpectEquivalent = true;
  CheckResult Result;
  smt::SolverStats Solver; ///< Per-row backend stats (fresh instance).
};

void printHeader() {
  std::printf("%-28s %-14s %7s %9s %7s %9s %10s %9s %8s %9s %8s %s\n",
              "Name", "Category", "States", "Branched", "Total", "Reach",
              "Conjuncts", "Queries", "Time(s)", "Solve(s)", "RSS(MB)",
              "Verdict");
  std::printf("%s\n", std::string(142, '-').c_str());
}

void printRow(const Row &R) {
  const char *Verdict =
      R.Result.V == Verdict::Equivalent
          ? "equivalent"
          : (R.Result.V == Verdict::NotEquivalent ? "NOT equivalent"
                                                  : "DNF (budget)");
  // DNF on the large applicability studies mirrors the paper's own
  // out-of-memory outcome on Service Provider (Table 2's asterisk): the
  // proof search is sound but resource-hungry on self-comparisons with
  // many spurious template pairs.
  bool AsExpected = R.Result.V == Verdict::ResourceLimit
                        ? R.Category == "Applicability"
                        : (R.Result.V == Verdict::Equivalent) ==
                              R.ExpectEquivalent;
  std::printf(
      "%-28s %-14s %7zu %9zu %7zu %9zu %10zu %9zu %8.2f %9.2f %8.1f %s%s\n",
      R.Name.c_str(), R.Category.c_str(), R.States, R.Branched, R.Total,
      R.Result.Stats.ReachPairs, R.Result.Stats.FinalConjuncts,
      R.Result.Stats.SmtQueries, double(R.Result.Stats.WallMicros) / 1e6,
      double(R.Result.Stats.SolverMicros) / 1e6, maxRssMb(), Verdict,
      AsExpected ? "" : "  ** UNEXPECTED **");
  if (R.Solver.SessionQueries > 0) {
    std::printf("%-28s %-14s sessions=%zu premises-blasted=%zu "
                "cache-hits=%zu reused-clauses=%zu\n",
                "", "  (incremental)", size_t(R.Solver.SessionsOpened),
                size_t(R.Solver.SessionPremises),
                size_t(R.Solver.PremiseCacheHits),
                size_t(R.Solver.ReusedClauses));
    std::printf("%-28s %-14s peak-learnts=%zu deleted=%zu reduce-runs=%zu "
                "arena-peak=%.1fMB restarts=%zu\n",
                "", "  (memory)", size_t(R.Solver.PeakLearnts),
                size_t(R.Solver.ClausesDeleted),
                size_t(R.Solver.ReduceDbRuns),
                double(R.Solver.ArenaBytesPeak) / (1024.0 * 1024.0),
                size_t(R.Solver.SessionRestarts));
  }
}

/// --unbounded: disable session clause-DB management entirely (no
/// reduceDB, no retired-goal deletion) — the grow-only PR-2 session
/// behavior, kept as the before-side of the memory A/B.
bool Unbounded = false;

/// --jobs N: after each sequential row, rerun the study through the
/// parallel frontier engine with N workers and print the scaling line
/// (wall-clock speedup + a decisions-identical check). N = 1 (default)
/// keeps the classic table.
size_t Jobs = 1;

/// --certify: after each sequential row, rerun it with streaming DRUP
/// certificates on and print the certified-vs-uncertified overhead line
/// (the docs/EXPERIMENTS.md certified column). Off by default so the
/// classic table's timings stay comparable across revisions.
bool CertifyColumn = false;

/// --goal-batch N: share one solver round-trip across up to N same-guard
/// entailment goals in every row (CheckOptions::GoalBatch; see
/// docs/SOLVERS.md). Decisions are identical at any N; the round-trip
/// column of the stats line is what moves. Default 1 so the classic
/// table's query accounting stays comparable across revisions.
size_t GoalBatch = 1;

/// --trace-out FILE: record every instrumented span of the whole table
/// run and write Chrome trace_event JSON at exit (docs/OBSERVABILITY.md).
const char *TraceOutPath = nullptr;

Row runStudy(const parsers::CaseStudy &Study, const InitialSpec &Spec,
             bool ExpectEquivalent, size_t MaxIterations = 1u << 20,
             uint64_t MaxWallMicros = 0, size_t RunJobs = 1,
             bool Certify = false) {
  Row R;
  R.Name = Study.Name;
  R.Category = Study.Category;
  R.States = Study.Left.numStates() + Study.Right.numStates();
  R.Branched = Study.Left.branchedBits() + Study.Right.branchedBits();
  R.Total = Study.Left.totalHeaderBits() + Study.Right.totalHeaderBits();
  R.ExpectEquivalent = ExpectEquivalent;
  smt::BitBlastSolver Solver; // Fresh backend per row: isolated stats.
  Solver.SessionReduce.Enabled = !Unbounded;
  Solver.SessionHardRetire = !Unbounded;
  CheckOptions O;
  O.Solver = &Solver;
  O.MaxIterations = MaxIterations;
  O.MaxWallMicros = MaxWallMicros;
  O.Jobs = RunJobs;
  O.Certify = Certify;
  O.GoalBatch = GoalBatch;
  R.Result = checkWithSpec(Study.Left, Study.Right, Spec, O);
  R.Solver = Solver.stats();
  return R;
}

/// The certified line under a sequential row: same study, same budgets,
/// streaming DRUP slices on. Overhead is certified/uncertified wall; the
/// decisions check pins that recording proofs never changes the search
/// (wall-limited rows excepted, same caveat as the scaling line). The
/// certificate is serialized exactly as --emit-cert/the service store
/// would, so Cert(MB) is the real artifact size.
void printCertifiedRow(const parsers::CaseStudy &Study, const Row &Seq,
                       const Row &Cert) {
  auto WallLimited = [](const Row &R) {
    return R.Result.V == Verdict::ResourceLimit &&
           R.Result.FailureReason.rfind("wall-clock", 0) == 0;
  };
  const char *Decisions;
  if (WallLimited(Seq) || WallLimited(Cert)) {
    Decisions = "n/a (wall-limited)";
  } else {
    bool Identical =
        Cert.Result.V == Seq.Result.V &&
        Cert.Result.Stats.FinalConjuncts == Seq.Result.Stats.FinalConjuncts &&
        Cert.Result.Stats.Iterations == Seq.Result.Stats.Iterations &&
        Cert.Result.Stats.Extends == Seq.Result.Stats.Extends;
    Decisions = Identical ? "identical" : "** DIVERGED **";
  }
  double Overhead = double(Cert.Result.Stats.WallMicros) /
                    double(std::max<uint64_t>(Seq.Result.Stats.WallMicros, 1));
  size_t CertBytes = 0, Streams = 0;
  if (Cert.Result.V == Verdict::Equivalent && Cert.Result.Proof) {
    CertBytes = serializeCertificate(Study.Left, Study.Right,
                                     Cert.Result.Certificate,
                                     Cert.Result.Proof.get(), "-")
                    .size();
    Streams = Cert.Result.Proof->streamCount();
  }
  std::printf("%-28s %-14s time=%.2fs overhead=%.2fx cert=%.2fMB "
              "streams=%zu decisions=%s\n",
              "", "  (certified)", double(Cert.Result.Stats.WallMicros) / 1e6,
              Overhead, double(CertBytes) / (1024.0 * 1024.0), Streams,
              Decisions);
}

/// The scaling line under a sequential row: same study, same budgets,
/// RunJobs workers. Wall-clock is the headline; Solve(s) sums solver
/// time *across threads* (it exceeding Time(s) is the parallelism). The
/// decisions column re-checks the engine's exactness promise in the
/// field: verdict, relation size and iteration count must match the
/// sequential row (SMT query counts legitimately differ — the merge
/// re-derives some answers — so they are reported, not compared).
/// Exactness only holds run-to-run when the budget is deterministic: a
/// wall-clock trip lands on whatever iteration the clock says, in
/// *either* run, so wall-limited rows report "n/a (wall-limited)"
/// rather than a spurious divergence.
void printScalingRow(const Row &Seq, const Row &Par, size_t N) {
  auto WallLimited = [](const Row &R) {
    return R.Result.V == Verdict::ResourceLimit &&
           R.Result.FailureReason.rfind("wall-clock", 0) == 0;
  };
  const char *Decisions;
  if (WallLimited(Seq) || WallLimited(Par)) {
    Decisions = "n/a (wall-limited)";
  } else {
    bool Identical =
        Par.Result.V == Seq.Result.V &&
        Par.Result.Stats.FinalConjuncts ==
            Seq.Result.Stats.FinalConjuncts &&
        Par.Result.Stats.Iterations == Seq.Result.Stats.Iterations &&
        Par.Result.Stats.Extends == Seq.Result.Stats.Extends;
    Decisions = Identical ? "identical" : "** DIVERGED **";
  }
  double Speedup = double(Seq.Result.Stats.WallMicros) /
                   double(std::max<uint64_t>(Par.Result.Stats.WallMicros, 1));
  std::printf("%-28s %-14s jobs=%zu time=%.2fs solve-cpu=%.2fs "
              "speedup=%.2fx queries=%zu decisions=%s\n",
              "", "  (parallel)", N,
              double(Par.Result.Stats.WallMicros) / 1e6,
              double(Par.Result.Stats.SolverMicros) / 1e6, Speedup,
              Par.Result.Stats.SmtQueries, Decisions);
}

/// Runs + prints one study: the sequential row, then (with --jobs N > 1)
/// the parallel scaling line.
void runAndPrint(const parsers::CaseStudy &Study, const InitialSpec &Spec,
                 bool ExpectEquivalent, size_t MaxIterations = 1u << 20,
                 uint64_t MaxWallMicros = 0) {
  Row Seq = runStudy(Study, Spec, ExpectEquivalent, MaxIterations,
                     MaxWallMicros);
  printRow(Seq);
  if (Jobs > 1) {
    Row Par = runStudy(Study, Spec, ExpectEquivalent, MaxIterations,
                       MaxWallMicros, Jobs);
    printScalingRow(Seq, Par, Jobs);
  }
  if (CertifyColumn) {
    Row Cert = runStudy(Study, Spec, ExpectEquivalent, MaxIterations,
                        MaxWallMicros, 1, /*Certify=*/true);
    printCertifiedRow(Study, Seq, Cert);
  }
}

InitialSpec plainSpec(const parsers::CaseStudy &Study) {
  return languageEquivalenceSpec(
      Study.Left, p4a::StateRef::normal(*Study.Left.findState(Study.LeftStart)),
      Study.Right,
      p4a::StateRef::normal(*Study.Right.findState(Study.RightStart)));
}

/// ether[96:111] ∈ {IPv4, IPv6} over the given side's store — the §7.1
/// external filter predicate.
logic::PureRef goodEthertype(logic::Side S, const p4a::Automaton &Aut) {
  auto Field = logic::BitExpr::mkSlice(
      logic::BitExpr::mkHdr(S, *Aut.findHeader("ether")), 96, 111);
  auto V6 = logic::BitExpr::mkLit(Bitvector::fromUint(0x86dd, 16));
  auto V4 = logic::BitExpr::mkLit(Bitvector::fromUint(0x8600, 16));
  return logic::Pure::mkOr(logic::Pure::mkEq(Field, V6),
                           logic::Pure::mkEq(Field, V4));
}

} // namespace

int main(int argc, char **argv) {
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--unbounded")) {
      Unbounded = true;
    } else if (!std::strcmp(argv[I], "--jobs") && I + 1 < argc) {
      Jobs = size_t(std::strtoull(argv[++I], nullptr, 10));
      if (Jobs < 1)
        Jobs = 1;
    } else if (!std::strcmp(argv[I], "--certify")) {
      CertifyColumn = true;
    } else if (!std::strcmp(argv[I], "--trace-out") && I + 1 < argc) {
      TraceOutPath = argv[++I];
    } else if (!std::strcmp(argv[I], "--goal-batch") && I + 1 < argc) {
      GoalBatch = size_t(std::strtoull(argv[++I], nullptr, 10));
      if (GoalBatch < 1)
        GoalBatch = 1;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--unbounded] [--jobs N] [--certify] "
                   "[--goal-batch N] [--trace-out FILE]\n",
                   argv[0]);
      return 2;
    }
  }
  // Perfetto timeline of the whole table (docs/OBSERVABILITY.md):
  // sequential studies on the main track, parallel reruns on worker
  // tracks. Passive — the rows print identically with or without it.
  std::unique_ptr<obs::TraceSink> Trace;
  if (TraceOutPath) {
    Trace = std::make_unique<obs::TraceSink>();
    obs::setTraceSink(Trace.get());
    obs::nameCurrentThread("bench-main");
  }
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::printf("Table 2 reproduction (paper §7; see docs/EXPERIMENTS.md for "
              "the paper-vs-measured discussion)%s\n\n",
              Unbounded ? "  [--unbounded: session clause-DB management "
                          "disabled]"
                        : "");
  if (Jobs > 1)
    std::printf("[--jobs %zu: each row is followed by a parallel frontier "
                "engine rerun; speedup is sequential/parallel wall]\n\n",
                Jobs);
  if (CertifyColumn)
    std::printf("[--certify: each row is followed by a streaming-certificate "
                "rerun; overhead is certified/uncertified wall]\n\n");
  printHeader();

  for (parsers::CaseStudy &Study : parsers::allCaseStudies()) {
    InitialSpec Spec = plainSpec(Study);
    bool Expect = true;
    if (Study.Name == "External filtering") {
      Spec.Mode = AcceptanceMode::Qualified;
      Spec.LeftQualifier = goodEthertype(logic::Side::Left, Study.Left);
      Spec.RightQualifier = logic::Pure::mkTrue();
    } else if (Study.Name == "Relational verification") {
      Spec.Mode = AcceptanceMode::Custom;
      logic::TemplatePair AccAcc{logic::Template::accept(),
                                 logic::Template::accept()};
      auto HL = logic::BitExpr::mkHdr(logic::Side::Left,
                                      *Study.Left.findHeader("ether"));
      auto HR = logic::BitExpr::mkHdr(logic::Side::Right,
                                      *Study.Right.findHeader("ether"));
      Spec.ExtraInitial.push_back(
          logic::GuardedFormula{AccAcc, logic::Pure::mkEq(HL, HR)});
    }
    // The applicability self-comparisons get a budget: the spurious
    // off-diagonal template pairs of the leap-level reach abstraction
    // make their refutation chains long (see DESIGN.md §5) — the paper's
    // experience at Coq scale (hundreds of GB / many hours). With the
    // incremental solver sessions each iteration is ~3× cheaper, so the
    // old 10000-iteration cap (which kept Edge and Datacenter DNF) is
    // now a 50000-iteration cap with a 15-minute wall-clock valve: Edge
    // converges around 34k iterations and Datacenter around 18k — see
    // docs/EXPERIMENTS.md for the measured before/after.
    bool Big = Study.Category == "Applicability";
    size_t Budget = Big ? 50000 : (1u << 20);
    uint64_t WallBudget = Big ? 900u * 1000u * 1000u : 0;
    runAndPrint(Study, Spec, Expect, Budget, WallBudget);
  }

  // Translation Validation (Figure 8): compile Edge to TCAM tables,
  // back-translate, prove equivalence of original and reconstruction.
  {
    pgen::TranslationValidation TV = pgen::buildEdgeTranslationValidation();
    if (!TV.ok()) {
      for (const std::string &D : TV.Diagnostics)
        std::printf("translation validation FAILED to build: %s\n",
                    D.c_str());
      return 1;
    }
    parsers::CaseStudy Study{"Translation Validation",
                             "Applicability",
                             TV.Original,
                             TV.OriginalStart,
                             TV.Reconstructed,
                             TV.ReconstructedStart};
    // Still DNF even incrementally (does not converge within 22k
    // iterations / 12 minutes — see docs/EXPERIMENTS.md), so a tighter
    // wall valve keeps the row from dominating the whole table's runtime.
    runAndPrint(Study, plainSpec(Study), true, 50000,
                300u * 1000u * 1000u);
  }

  // §7.1 sanity checks: inequivalent inputs must be rejected, with the
  // search still terminating.
  {
    parsers::CaseStudy Study{"Sanity: sloppy vs strict",
                             "Negative",
                             parsers::sloppyEthernetIp(),
                             "parse_eth",
                             parsers::strictEthernetIp(),
                             "parse_eth"};
    runAndPrint(Study, plainSpec(Study), false);
  }
  {
    parsers::CaseStudy Study{"Sanity: uninit vlan header",
                             "Negative",
                             parsers::vlanParserBuggy(),
                             "parse_eth",
                             parsers::vlanParserBuggy(),
                             "parse_eth"};
    runAndPrint(Study, plainSpec(Study), false);
  }

  std::printf("\nNote: RSS is the process max so far (monotone across "
              "rows); Reach counts template pairs after §5.1 pruning.\n");
  if (Trace) {
    obs::setTraceSink(nullptr);
    std::string Err;
    if (!Trace->writeChromeJson(TraceOutPath, &Err)) {
      std::fprintf(stderr, "bench_table2: %s\n", Err.c_str());
      return 2;
    }
    std::printf("trace written to %s (%zu events); open in "
                "ui.perfetto.dev or summarize with leapfrog-trace\n",
                TraceOutPath, Trace->eventCount());
  }
  return 0;
}
