//===- bench_figure8.cpp - The translation-validation pipeline ------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 8: the Edge parser is compiled to a hardware table
// (printed in the figure's Match/Next-State/Adv format), translated back
// into a P4 automaton, and validated. The symbolic equivalence proof for
// the full Edge parser is the Table 2 "Translation Validation" row (it
// takes minutes); this harness reports the pipeline artifacts, a
// concrete differential check over random packets, and the symbolic
// proof for a representative sub-parser, keeping the binary quick enough
// for routine runs.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "p4a/Parser.h"
#include "p4a/Semantics.h"
#include "parsers/CaseStudies.h"
#include "pgen/TranslationValidation.h"

#include <cstdio>

using namespace leapfrog;

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::printf("Figure 8 reproduction: parser-gen pipeline on the Edge "
              "parser\n\n");

  pgen::TranslationValidation TV = pgen::buildEdgeTranslationValidation();
  if (!TV.ok()) {
    for (const std::string &D : TV.Diagnostics)
      std::printf("pipeline error: %s\n", D.c_str());
    return 1;
  }

  std::printf("compiled table: %zu hardware states, %zu TCAM entries\n",
              TV.Table.NumStates, TV.Table.Entries.size());
  std::printf("back-translated parser: %zu states, %zu headers\n\n",
              TV.Reconstructed.numStates(), TV.Reconstructed.numHeaders());

  std::printf("first table rows (Figure 8 format):\n");
  {
    std::string All = TV.Table.print();
    size_t Shown = 0, Pos = 0;
    while (Shown < 6 && Pos < All.size()) {
      size_t Nl = All.find('\n', Pos);
      std::printf("%s\n", All.substr(Pos, Nl - Pos).c_str());
      Pos = Nl + 1;
      ++Shown;
    }
    std::printf("... (%zu rows elided)\n\n",
                TV.Table.Entries.size() - Shown);
  }

  // Concrete differential check: original P4A vs hardware table vs
  // back-translated P4A on random packets of increasing length.
  {
    auto StartId = *TV.Original.findState(TV.OriginalStart);
    auto RecId = *TV.Reconstructed.findState(TV.ReconstructedStart);
    uint64_t Seed = 0xf19a8e;
    size_t Checked = 0, Accepted = 0;
    // Random tails behind a valid-looking Ethernet prefix (random types
    // alone essentially never spell 0x0800/0x86dd/0x8847, which would
    // leave the interesting paths unexercised).
    const uint16_t Types[] = {0x0800, 0x86dd, 0x8847, 0x8100, 0x1234};
    for (size_t Len = 14; Len <= 74; ++Len)
      for (int I = 0; I < 32; ++I) {
        Bitvector Pkt(96); // Zero MAC addresses.
        Pkt = Pkt.concat(Bitvector::fromUint(Types[I % 5], 16));
        while (Pkt.size() < Len * 8) {
          Seed ^= Seed << 13;
          Seed ^= Seed >> 7;
          Seed ^= Seed << 17;
          // Bias bits toward zero so IHL/proto fields often hit real
          // cases (0101/0x06/0x11 have few set bits).
          Pkt.pushBack((Seed & 3) == 0);
        }
        bool A = p4a::accepts(TV.Original, p4a::StateRef::normal(StartId),
                              p4a::Store(TV.Original), Pkt);
        bool H = pgen::hwAccepts(TV.Table, Pkt);
        bool B2 = p4a::accepts(TV.Reconstructed,
                               p4a::StateRef::normal(RecId),
                               p4a::Store(TV.Reconstructed), Pkt);
        ++Checked;
        Accepted += A;
        if (A != H || A != B2) {
          std::printf("DIVERGENCE on packet of %zu bytes!\n", Len);
          return 1;
        }
      }
    std::printf("concrete differential check: %zu packets, %zu accepted, "
                "0 divergences across P4A / TCAM / back-translation\n\n",
                Checked, Accepted);
  }

  // Symbolic translation validation for the MPLS sub-parser of Edge —
  // the same pipeline, proof in seconds.
  {
    p4a::Automaton Sub = p4a::parseAutomatonOrDie(R"(
      state mpls0 {
        extract(mpls0_lbl, 32);
        select(mpls0_lbl[23:23]) { 0 => mpls1  1 => ipv4 }
      }
      state mpls1 {
        extract(mpls1_lbl, 32);
        select(mpls1_lbl[23:23]) { 1 => ipv4 }
      }
      state ipv4 {
        extract(ipv4_hdr, 160);
        select(ipv4_hdr[72:79]) { 0x06 => tcp  0x11 => udp }
      }
      state tcp { extract(tcp_hdr, 160); goto accept }
      state udp { extract(udp_hdr, 64); goto accept }
    )");
    pgen::TranslationValidation SubTV =
        pgen::buildTranslationValidation(Sub, "mpls0");
    if (!SubTV.ok()) {
      std::printf("sub-parser pipeline error: %s\n",
                  SubTV.Diagnostics[0].c_str());
      return 1;
    }
    core::CheckResult Res = core::checkLanguageEquivalence(
        SubTV.Original, SubTV.OriginalStart, SubTV.Reconstructed,
        SubTV.ReconstructedStart);
    std::printf("symbolic validation (MPLS/IP sub-parser): %s "
                "(%zu conjuncts, %zu queries, %.2f s)\n",
                Res.equivalent() ? "PASSED" : "FAILED",
                Res.Stats.FinalConjuncts, Res.Stats.SmtQueries,
                double(Res.Stats.WallMicros) / 1e6);
    if (!Res.equivalent()) {
      std::printf("  %s\n", Res.FailureReason.c_str());
      return 1;
    }
  }
  std::printf("\n(the full-Edge symbolic proof is the Table 2 "
              "'Translation Validation' row in bench_table2)\n");
  return 0;
}
