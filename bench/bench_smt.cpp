//===- bench_smt.cpp - SMT query latency distribution (§7.3) --------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Reproduces the §7.3 "SMT Solver Performance" paragraph:
//
//   "Overall we found that all of the queries were solved in at most 10
//    seconds, with 99% taking at most 5 seconds."
//
// We run the utility case studies through the checker against a fresh
// solver instance and report the per-query latency distribution (min /
// p50 / p90 / p99 / max), plus aggregate SAT/UNSAT counts and average
// bit-blasted problem sizes. The reproducible shape is the heavy skew:
// the p99 sits far below the max, and the overwhelming majority of
// queries are trivial for the solver. It also exercises the SMT-LIB
// printer on a live query, mirroring the paper's plugin (Figure 6).
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "logic/Lower.h"
#include "obs/Metrics.h"
#include "parsers/CaseStudies.h"
#include "smt/SmtLib.h"
#include "smt/SmtLibSolver.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace leapfrog;
using namespace leapfrog::core;

namespace {

uint64_t percentile(std::vector<uint64_t> &Sorted, double P) {
  if (Sorted.empty())
    return 0;
  size_t Idx = size_t(P * double(Sorted.size() - 1));
  return Sorted[Idx];
}

/// One JSON record per (study, mode) pair, written with --json so CI can
/// archive the numbers as an artifact without parsing the human table.
struct JsonRecord {
  std::string Study;
  std::string Mode; ///< "incremental" or "monolithic".
  uint64_t Queries = 0;
  uint64_t P50 = 0, P99 = 0, Max = 0;
  uint64_t TotalMicros = 0;
  uint64_t SessionPremises = 0, PremiseCacheHits = 0, ReusedClauses = 0;
  /// Session memory footprint (zero in monolithic mode). peak_learnts is
  /// the CI perf gate's subject: tools/check_perf_baseline.py fails the
  /// perf-smoke job when it regresses more than 2x over the committed
  /// baseline (bench/baselines/bench_smt_smoke.json).
  uint64_t PeakLearnts = 0, ArenaPeakBytes = 0;
  uint64_t ClausesDeleted = 0, ReduceDbRuns = 0, SessionRestarts = 0;
  /// Physical check-sat round-trips. Deterministic (answers decide the
  /// refinement layers, and answers are schedule-independent), so the
  /// perf gate checks the batched mode's value exactly: round_trips <
  /// queries is the whole point of --goal-batch (docs/SOLVERS.md).
  uint64_t RoundTrips = 0;
};

/// Writes `{"records": [...], "metrics": <snapshot>}`: the per-study
/// records CI archives plus the process-wide obs::Metrics snapshot, whose
/// smt.solve_micros histogram p95 tools/check_perf_baseline.py gates on
/// (the script still accepts the older bare-array form for old baselines).
void writeJson(const char *Path, const std::vector<JsonRecord> &Records) {
  std::FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::fprintf(stderr, "bench_smt: cannot open %s for writing\n", Path);
    return;
  }
  std::fprintf(F, "{\"records\": [\n");
  for (size_t I = 0; I < Records.size(); ++I) {
    const JsonRecord &R = Records[I];
    std::fprintf(F,
                 "  {\"study\": \"%s\", \"mode\": \"%s\", \"queries\": %zu, "
                 "\"p50_us\": %zu, \"p99_us\": %zu, \"max_us\": %zu, "
                 "\"total_us\": %zu, \"session_premises\": %zu, "
                 "\"premise_cache_hits\": %zu, \"reused_clauses\": %zu, "
                 "\"peak_learnts\": %zu, \"arena_peak_bytes\": %zu, "
                 "\"clauses_deleted\": %zu, \"reduce_db_runs\": %zu, "
                 "\"session_restarts\": %zu, \"round_trips\": %zu}%s\n",
                 R.Study.c_str(), R.Mode.c_str(), size_t(R.Queries),
                 size_t(R.P50), size_t(R.P99), size_t(R.Max),
                 size_t(R.TotalMicros), size_t(R.SessionPremises),
                 size_t(R.PremiseCacheHits), size_t(R.ReusedClauses),
                 size_t(R.PeakLearnts), size_t(R.ArenaPeakBytes),
                 size_t(R.ClausesDeleted), size_t(R.ReduceDbRuns),
                 size_t(R.SessionRestarts), size_t(R.RoundTrips),
                 I + 1 < Records.size() ? "," : "");
  }
  std::fprintf(F, "],\n\"metrics\": %s}\n",
               obs::metrics().snapshot().toJson().c_str());
  std::fclose(F);
}

} // namespace

int main(int argc, char **argv) {
  // --smoke: only the fast studies, no certification rerun — the CI perf
  // smoke step runs this and uploads --json as an artifact, seeding a
  // longitudinal record without gating on noisy thresholds.
  bool Smoke = false;
  const char *JsonPath = nullptr;
  // --jobs N: adds a third per-study mode — the parallel frontier engine
  // with N workers — whose latency distribution aggregates every worker
  // backend (SolverStats::merge), so the scaling signal is wall-clock
  // total_us per mode, not per-query shape (answers are identical by
  // construction). Off by default so the CI smoke JSON keys stay stable.
  size_t Jobs = 1;
  // --backend SPEC: adds a per-study A/B mode solving through the given
  // backend (smtlib:<cmd> for an external SMT-LIB2 solver, crosscheck for
  // both with divergence checking — see smt/SmtLibSolver.h). Off by
  // default, so the smoke JSON keys stay stable; the external wall-clock
  // line is the §6.3 solver-comparison signal.
  std::string Backend;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--smoke")) {
      Smoke = true;
    } else if (!std::strcmp(argv[I], "--json") && I + 1 < argc) {
      JsonPath = argv[++I];
    } else if (!std::strcmp(argv[I], "--jobs") && I + 1 < argc) {
      Jobs = size_t(std::strtoull(argv[++I], nullptr, 10));
      if (Jobs < 1)
        Jobs = 1;
    } else if (!std::strcmp(argv[I], "--backend") && I + 1 < argc) {
      Backend = argv[++I];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json FILE] [--jobs N] "
                   "[--backend SPEC]\n",
                   argv[0]);
      return 2;
    }
  }
  std::vector<JsonRecord> Json;
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::printf("SMT query latency distribution (paper §7.3)\n");
  if (!Backend.empty())
    std::printf("external backend A/B: --backend '%s'\n", Backend.c_str());
  std::printf("\n");
  std::printf("%-26s %-12s %8s %8s %8s %8s %8s %8s %6s %6s\n", "Study",
              "Mode", "queries", "min(us)", "p50(us)", "p90(us)", "p99(us)",
              "max(us)", "sat%", "unsat%");

  struct {
    const char *Name;
    p4a::Automaton L, R;
    const char *QL, *QR;
  } Studies[] = {
      {"State Rearrangement", parsers::rearrangeReference(),
       parsers::rearrangeCombined(), "parse_ip", "parse_combined"},
      {"Speculative loop", parsers::mplsReference(),
       parsers::mplsVectorized(), "q1", "q3"},
      {"Header initialization", parsers::vlanParser(), parsers::vlanParser(),
       "parse_eth", "parse_eth"},
      {"Variable-length parsing", parsers::ipOptionsGeneric(2),
       parsers::ipOptionsTimestamp(2), "parse_0", "parse_0"},
  };

  // Each study runs through the incremental sessions (the checker's
  // default) and through per-query monolithic solving — the
  // incrementality ablation for §7.3 — plus, with --jobs N, through the
  // parallel frontier engine as a scaling column.
  struct ModeSpec {
    const char *Name;
    bool Incremental;
    size_t Jobs;
    const char *Backend;     ///< Factory spec; "" = in-repo bitblast.
    size_t GoalBatch = 1;    ///< CheckOptions::GoalBatch for the mode.
  };
  // "batched" is the --goal-batch economics row: same incremental
  // sessions, up to 8 same-guard goals per physical round-trip. Its
  // round_trips column is what tools/check_perf_baseline.py gates —
  // deterministic, so a lost batch (round_trips creeping back toward
  // queries) is a hard CI failure, not noise.
  std::vector<ModeSpec> Modes = {{"incremental", true, 1, ""},
                                 {"monolithic", false, 1, ""},
                                 {"batched", true, 1, "", 8}};
  std::string ParallelName;
  if (Jobs > 1) {
    ParallelName = "parallel-j" + std::to_string(Jobs);
    Modes.push_back(ModeSpec{ParallelName.c_str(), true, Jobs, ""});
  }
  if (!Backend.empty()) {
    // Validate the spec eagerly so a typo is a usage error here, not a
    // crash in the per-study loop.
    std::string Err;
    if (!smt::createSolverBackend(Backend, &Err)) {
      std::fprintf(stderr, "bench_smt: %s\n", Err.c_str());
      return 2;
    }
    // Label the A/B row by backend family; the full command was printed
    // under the title line.
    const char *Label = Backend.rfind("crosscheck", 0) == 0 ? "crosscheck"
                                                            : "smtlib";
    Modes.push_back(ModeSpec{Label, true, 1, Backend.c_str()});
  }
  std::vector<uint64_t> All;
  for (auto &Study : Studies) {
    if (Smoke && !std::strcmp(Study.Name, "Variable-length parsing"))
      continue; // The one slow utility study; smoke stays seconds-fast.
    for (const ModeSpec &M : Modes) {
      // Fresh backend (and stats) per (study, mode); worker stats are
      // absorbed into it. Factory spec "" is the in-repo bit-blaster.
      std::unique_ptr<smt::SmtSolver> SolverPtr =
          smt::createSolverBackend(M.Backend, nullptr);
      smt::SmtSolver &Solver = *SolverPtr;
      CheckOptions O;
      O.Solver = &Solver;
      O.UseIncremental = M.Incremental;
      O.Jobs = M.Jobs;
      O.GoalBatch = M.GoalBatch;
      CheckResult Res =
          checkLanguageEquivalence(Study.L, Study.QL, Study.R, Study.QR, O);
      (void)Res;
      std::vector<uint64_t> Micros = Solver.stats().QueryMicros;
      std::sort(Micros.begin(), Micros.end());
      bool Incremental =
          M.Incremental && M.Jobs == 1 && !*M.Backend && M.GoalBatch == 1;
      if (Incremental)
        All.insert(All.end(), Micros.begin(), Micros.end());
      double N = double(std::max<uint64_t>(Solver.stats().Queries, 1));
      const char *Mode = M.Name;
      std::printf(
          "%-26s %-12s %8zu %8zu %8zu %8zu %8zu %8zu %5.1f%% %5.1f%%\n",
          Study.Name, Mode, size_t(Solver.stats().Queries),
          size_t(Micros.empty() ? 0 : Micros.front()),
          size_t(percentile(Micros, 0.50)),
          size_t(percentile(Micros, 0.90)),
          size_t(percentile(Micros, 0.99)),
          size_t(Micros.empty() ? 0 : Micros.back()),
          100.0 * double(Solver.stats().SatAnswers) / N,
          100.0 * double(Solver.stats().UnsatAnswers) / N);
      Json.push_back(JsonRecord{
          Study.Name, Mode, Solver.stats().Queries,
          percentile(Micros, 0.50), percentile(Micros, 0.99),
          Micros.empty() ? 0 : Micros.back(), Solver.stats().TotalMicros,
          Solver.stats().SessionPremises, Solver.stats().PremiseCacheHits,
          Solver.stats().ReusedClauses, Solver.stats().PeakLearnts,
          Solver.stats().ArenaBytesPeak, Solver.stats().ClausesDeleted,
          Solver.stats().ReduceDbRuns, Solver.stats().SessionRestarts,
          Solver.stats().RoundTrips});
      if (M.GoalBatch > 1) {
        // The batching economics line: logical queries vs physical
        // round-trips under --goal-batch (see docs/SOLVERS.md).
        std::printf("%-26s %-12s round-trips=%zu/%zu queries "
                    "(goal-batch %zu)\n",
                    "", "", size_t(Solver.stats().RoundTrips),
                    size_t(Solver.stats().Queries), M.GoalBatch);
      }
      if (*M.Backend) {
        // The external A/B line: how much of the mode's wall went to the
        // external process vs in-repo fallbacks, and — in crosscheck —
        // the agreement count (§6.3's solver comparison, measured).
        auto *Ext = dynamic_cast<smt::SmtLibSolver *>(&Solver);
        auto *Cross = dynamic_cast<smt::CrossCheckSolver *>(&Solver);
        if (Cross)
          Ext = dynamic_cast<smt::SmtLibSolver *>(&Cross->external());
        if (Ext)
          std::printf("%-26s %-12s external=%zu fallback=%zu timeouts=%zu "
                      "spawns=%zu wall=%.1fms\n",
                      "", "", size_t(Ext->extStats().ExternalQueries),
                      size_t(Ext->extStats().FallbackQueries),
                      size_t(Ext->extStats().Timeouts),
                      size_t(Ext->extStats().Spawns),
                      double(Res.Stats.WallMicros) / 1e3);
        if (Cross)
          std::printf("%-26s %-12s crosscheck: %zu compared, %zu "
                      "divergences\n",
                      "", "", size_t(Cross->crossStats().Checked),
                      size_t(Cross->crossStats().Divergences));
      }
      if (M.Jobs > 1) {
        // The scaling line: wall-clock vs the per-thread solver-CPU sum
        // (their ratio is the effective parallelism achieved).
        std::printf("%-26s %-12s wall=%.1fms solver-cpu=%.1fms "
                    "workers' sessions=%zu\n",
                    "", "", double(Res.Stats.WallMicros) / 1e3,
                    double(Res.Stats.SolverMicros) / 1e3,
                    size_t(Solver.stats().SessionsOpened));
      }
      if (Incremental) {
        std::printf("%-26s %-12s premises=%zu cache-hits=%zu "
                    "reused-clauses=%zu sessions=%zu\n",
                    "", "", size_t(Solver.stats().SessionPremises),
                    size_t(Solver.stats().PremiseCacheHits),
                    size_t(Solver.stats().ReusedClauses),
                    size_t(Solver.stats().SessionsOpened));
        std::printf("%-26s %-12s peak-learnts=%zu arena-peak=%.1fKB "
                    "deleted=%zu reduce-runs=%zu restarts=%zu\n",
                    "", "", size_t(Solver.stats().PeakLearnts),
                    double(Solver.stats().ArenaBytesPeak) / 1024.0,
                    size_t(Solver.stats().ClausesDeleted),
                    size_t(Solver.stats().ReduceDbRuns),
                    size_t(Solver.stats().SessionRestarts));
      }
    }
  }

  std::sort(All.begin(), All.end());
  std::printf("%-26s %-12s %8zu %8zu %8zu %8zu %8zu %8zu\n", "ALL",
              "incremental", All.size(),
              size_t(All.empty() ? 0 : All.front()),
              size_t(percentile(All, 0.50)), size_t(percentile(All, 0.90)),
              size_t(percentile(All, 0.99)),
              size_t(All.empty() ? 0 : All.back()));
  if (!All.empty())
    std::printf("\npaper shape check: p99/max = %.2f (paper: 5s/10s "
                "= 0.50; heavily skewed either way)\n",
                double(percentile(All, 0.99)) / double(All.back()));
  if (Smoke) {
    if (JsonPath)
      writeJson(JsonPath, Json);
    return 0;
  }

  // Proof-reconstruction overhead (the §6.4 future-work item, implemented
  // here as DRUP logging + independent replay): rerun each study with a
  // certifying solver and report the cost of removing the solver from the
  // trusted base.
  std::printf("\nDRUP certification overhead (every UNSAT answer proved "
              "and replayed):\n");
  std::printf("%-26s %8s %9s %10s %10s %9s\n", "Study", "unsat", "lemmas",
              "solve(us)", "proof(us)", "overhead");
  for (auto &Study : Studies) {
    smt::BitBlastSolver Plain, Certifying;
    Certifying.CertifyUnsat = true;
    CheckOptions O;
    O.Solver = &Plain;
    (void)checkLanguageEquivalence(Study.L, Study.QL, Study.R, Study.QR, O);
    O.Solver = &Certifying;
    CheckResult Res =
        checkLanguageEquivalence(Study.L, Study.QL, Study.R, Study.QR, O);
    if (!Res.equivalent())
      std::printf("%-26s (unexpected verdict)\n", Study.Name);
    const smt::SolverStats &S = Certifying.stats();
    std::printf("%-26s %8zu %9zu %10zu %10zu %8.1f%%\n", Study.Name,
                size_t(S.CertifiedUnsat), size_t(S.ProofLemmas),
                size_t(Plain.stats().TotalMicros), size_t(S.ProofMicros),
                100.0 * double(S.ProofMicros) /
                    double(std::max<uint64_t>(Plain.stats().TotalMicros,
                                              1)));
  }

  // One live query exported through the SMT-LIB printer (Figure 6's
  // plugin path), so external solvers can cross-check when available.
  {
    p4a::Automaton L = parsers::mplsReference();
    p4a::Automaton R = parsers::mplsVectorized();
    logic::TemplatePair TP{
        logic::Template{p4a::StateRef::normal(*L.findState("q2")), 0},
        logic::Template{p4a::StateRef::normal(*R.findState("q5")), 0}};
    auto U = logic::BitExpr::mkHdr(logic::Side::Left, *L.findHeader("udp"));
    auto V = logic::BitExpr::mkHdr(logic::Side::Right, *R.findHeader("udp"));
    smt::BvFormulaRef Q =
        logic::lowerPure(L, R, TP, logic::Pure::mkEq(U, V));
    std::printf("\nsample SMT-LIB export of a lowered query:\n%s",
                smt::toSmtLibScript(Q).c_str());
  }
  if (JsonPath)
    writeJson(JsonPath, Json);
  return 0;
}
