//===- bench_corpus.cpp - Textual corpus timing ---------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Times the full textual pipeline — parse .lfp, elaborate, decide — over
// every pair in examples/corpus/: the ten registry twins (corpus-gen's
// output for Table 2's studies) and the four hand-written protocol
// studies, each as its equivalent (base, opt) and refuted (base, bug)
// pair. The point of the table: front-end cost (parse + elaborate) is
// microseconds against checker seconds, i.e. the textual front-end is
// free, and the corpus studies are small enough to gate in CI.
//
//   bench_corpus [corpus-dir] [--jobs N]
//
// corpus-dir defaults to examples/corpus (run from the repo root). The
// big Applicability self-pairs get the same iteration budget treatment
// as bench_table2 — DNF there mirrors the paper's own resource story.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "frontend/Elaborate.h"
#include "frontend/Text.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace leapfrog;
using Clock = std::chrono::steady_clock;

namespace {

uint64_t microsSince(Clock::time_point Start) {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - Start)
                      .count());
}

struct LoadedSide {
  frontend::ElaborationResult Elab;
  uint64_t ParseMicros = 0;
  uint64_t ElabMicros = 0;
  bool Ok = false;
};

LoadedSide loadSide(const std::string &Path) {
  LoadedSide Out;
  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "bench_corpus: cannot read '%s'\n", Path.c_str());
    return Out;
  }
  std::ostringstream Ss;
  Ss << In.rdbuf();

  Clock::time_point T0 = Clock::now();
  frontend::TextParseResult Parsed = frontend::parseSurface(Ss.str());
  Out.ParseMicros = microsSince(T0);
  if (!Parsed.ok()) {
    std::fprintf(stderr, "bench_corpus: '%s' has parse errors\n",
                 Path.c_str());
    return Out;
  }
  T0 = Clock::now();
  Out.Elab = frontend::elaborate(Parsed.Program);
  Out.ElabMicros = microsSince(T0);
  if (!Out.Elab.ok()) {
    std::fprintf(stderr, "bench_corpus: '%s' does not elaborate\n",
                 Path.c_str());
    return Out;
  }
  Out.Ok = true;
  return Out;
}

struct PairSpec {
  const char *Label;
  const char *LeftFile;
  const char *RightFile;
  const char *Expect; ///< "equivalent", "refuted", or "either" (budgeted).
};

} // namespace

int main(int Argc, char **Argv) {
  std::string Dir = "examples/corpus";
  size_t Jobs = 1;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--jobs") && I + 1 < Argc) {
      Jobs = size_t(std::strtoull(Argv[++I], nullptr, 10));
      if (Jobs < 1)
        Jobs = 1;
    } else if (Argv[I][0] != '-') {
      Dir = Argv[I];
    } else {
      std::fprintf(stderr, "usage: %s [corpus-dir] [--jobs N]\n", Argv[0]);
      return 2;
    }
  }

  // The registry twins, named as corpus-gen writes them, then the
  // hand-written protocol studies. "either" marks the Applicability
  // self-pairs whose convergence needs bench_table2-scale budgets.
  const std::vector<PairSpec> Pairs = {
      {"state_rearrangement", "state_rearrangement_left.lfp",
       "state_rearrangement_right.lfp", "equivalent"},
      {"variable_length_parsing", "variable_length_parsing_left.lfp",
       "variable_length_parsing_right.lfp", "equivalent"},
      {"header_initialization", "header_initialization_left.lfp",
       "header_initialization_right.lfp", "equivalent"},
      {"speculative_loop", "speculative_loop_left.lfp",
       "speculative_loop_right.lfp", "equivalent"},
      {"relational_verification", "relational_verification_left.lfp",
       "relational_verification_right.lfp", "either"},
      {"external_filtering", "external_filtering_left.lfp",
       "external_filtering_right.lfp", "either"},
      {"edge", "edge_left.lfp", "edge_right.lfp", "either"},
      {"service_provider", "service_provider_left.lfp",
       "service_provider_right.lfp", "either"},
      {"datacenter", "datacenter_left.lfp", "datacenter_right.lfp",
       "either"},
      {"enterprise", "enterprise_left.lfp", "enterprise_right.lfp",
       "either"},
      {"ipv6_chain vs opt", "ipv6_chain.lfp", "ipv6_chain_opt.lfp",
       "equivalent"},
      {"ipv6_chain vs bug", "ipv6_chain.lfp", "ipv6_chain_bug.lfp",
       "refuted"},
      {"vlan_qinq vs opt", "vlan_qinq.lfp", "vlan_qinq_opt.lfp",
       "equivalent"},
      {"vlan_qinq vs bug", "vlan_qinq.lfp", "vlan_qinq_bug.lfp", "refuted"},
      {"tunnel vs opt", "tunnel.lfp", "tunnel_opt.lfp", "equivalent"},
      {"tunnel vs bug", "tunnel.lfp", "tunnel_bug.lfp", "refuted"},
      {"quic_varint vs opt", "quic_varint.lfp", "quic_varint_opt.lfp",
       "equivalent"},
      {"quic_varint vs bug", "quic_varint.lfp", "quic_varint_bug.lfp",
       "refuted"},
  };
  // Note: relational_verification and external_filtering twins compare
  // under the *plain* language-equivalence spec here (the CLI's spec),
  // not the qualified/custom §7.1 specs bench_table2 uses — so their
  // verdicts may differ from Table 2 and they run under "either".

  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::printf("Textual corpus pipeline timings (dir: %s, jobs: %zu)\n\n",
              Dir.c_str(), Jobs);
  std::printf("%-26s %10s %10s %9s %9s %10s %s\n", "Pair", "Parse(us)",
              "Elab(us)", "Iters", "Queries", "Check(s)", "Verdict");
  std::printf("%s\n", std::string(92, '-').c_str());

  bool AllAsExpected = true;
  for (const PairSpec &P : Pairs) {
    LoadedSide L = loadSide(Dir + "/" + P.LeftFile);
    LoadedSide R = loadSide(Dir + "/" + P.RightFile);
    if (!L.Ok || !R.Ok) {
      AllAsExpected = false;
      continue;
    }
    core::CheckOptions O;
    O.Jobs = Jobs;
    bool Budgeted = !std::strcmp(P.Expect, "either");
    O.MaxIterations = Budgeted ? 20000 : (1u << 20);
    O.MaxWallMicros = Budgeted ? 120u * 1000u * 1000u : 0;
    core::CheckResult Res = core::checkLanguageEquivalence(
        L.Elab.Aut,
        p4a::StateRef::normal(*L.Elab.Aut.findState(L.Elab.Entry)),
        R.Elab.Aut,
        p4a::StateRef::normal(*R.Elab.Aut.findState(R.Elab.Entry)), O);

    const char *Verdict = Res.V == core::Verdict::Equivalent
                              ? "equivalent"
                              : (Res.V == core::Verdict::NotEquivalent
                                     ? "NOT equivalent"
                                     : "DNF (budget)");
    bool AsExpected =
        Budgeted ||
        (!std::strcmp(P.Expect, "equivalent")
             ? Res.V == core::Verdict::Equivalent
             : Res.V == core::Verdict::NotEquivalent);
    AllAsExpected &= AsExpected;
    std::printf("%-26s %10zu %10zu %9zu %9zu %10.3f %s%s\n", P.Label,
                size_t(L.ParseMicros + R.ParseMicros),
                size_t(L.ElabMicros + R.ElabMicros), Res.Stats.Iterations,
                Res.Stats.SmtQueries,
                double(Res.Stats.WallMicros) / 1e6, Verdict,
                AsExpected ? "" : "  ** UNEXPECTED **");
  }

  std::printf("\n%s\n", AllAsExpected
                            ? "all verdicts as documented"
                            : "** some verdicts deviated from the corpus "
                              "documentation **");
  return AllAsExpected ? 0 : 1;
}
