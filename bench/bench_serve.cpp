//===- bench_serve.cpp - Warm-service cache benchmark and CI smoke --------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// The economics the service exists for, measured: replay the full textual
// corpus against a warm CheckService — one cold pass that computes every
// pair, one warm pass that must answer every pair from the cache — and
// report per-pair cold-check vs cache-hit latency. The run FAILS (exit 1)
// unless every warm answer is a cache hit with verdict and statistics
// bit-identical to the cold record, and the aggregate speedup clears 100x.
//
//   bench_serve [corpus-dir] [--jobs N] [--json FILE]
//   bench_serve --smoke [corpus-dir] [--serve-bin PATH]
//
// corpus-dir defaults to examples/corpus (run from the repo root).
//
// --smoke is the CI end-to-end: fork/exec the real leapfrog-serve binary
// (--serve-bin, or $LEAPFROG_SERVE_BIN, or ./leapfrog-serve) in --stdio
// mode over pipes, fire three corpus requests, assert the repeat of the
// first is answered as a cache hit with identical stats, send the
// shutdown op, and require a clean exit 0.
//
//===----------------------------------------------------------------------===//

#include "core/Engine.h"
#include "serve/Cache.h"
#include "serve/Json.h"
#include "serve/Service.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace leapfrog;
using Clock = std::chrono::steady_clock;

namespace {

uint64_t microsSince(Clock::time_point Start) {
  return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - Start)
                      .count());
}

bool readFile(const std::string &Path, std::string &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::ostringstream Ss;
  Ss << In.rdbuf();
  Out = Ss.str();
  return true;
}

struct PairSpec {
  const char *Label;
  const char *LeftFile;
  const char *RightFile;
  bool Budgeted; ///< Applicability self-pairs: bench_table2 budgets.
};

// The bench_corpus pair table (see bench_corpus.cpp for provenance).
const std::vector<PairSpec> &corpusPairs() {
  static const std::vector<PairSpec> Pairs = {
      {"state_rearrangement", "state_rearrangement_left.lfp",
       "state_rearrangement_right.lfp", false},
      {"variable_length_parsing", "variable_length_parsing_left.lfp",
       "variable_length_parsing_right.lfp", false},
      {"header_initialization", "header_initialization_left.lfp",
       "header_initialization_right.lfp", false},
      {"speculative_loop", "speculative_loop_left.lfp",
       "speculative_loop_right.lfp", false},
      {"relational_verification", "relational_verification_left.lfp",
       "relational_verification_right.lfp", true},
      {"external_filtering", "external_filtering_left.lfp",
       "external_filtering_right.lfp", true},
      {"edge", "edge_left.lfp", "edge_right.lfp", true},
      {"service_provider", "service_provider_left.lfp",
       "service_provider_right.lfp", true},
      {"datacenter", "datacenter_left.lfp", "datacenter_right.lfp", true},
      {"enterprise", "enterprise_left.lfp", "enterprise_right.lfp", true},
      {"ipv6_chain vs opt", "ipv6_chain.lfp", "ipv6_chain_opt.lfp", false},
      {"ipv6_chain vs bug", "ipv6_chain.lfp", "ipv6_chain_bug.lfp", false},
      {"vlan_qinq vs opt", "vlan_qinq.lfp", "vlan_qinq_opt.lfp", false},
      {"vlan_qinq vs bug", "vlan_qinq.lfp", "vlan_qinq_bug.lfp", false},
      {"tunnel vs opt", "tunnel.lfp", "tunnel_opt.lfp", false},
      {"tunnel vs bug", "tunnel.lfp", "tunnel_bug.lfp", false},
      {"quic_varint vs opt", "quic_varint.lfp", "quic_varint_opt.lfp",
       false},
      {"quic_varint vs bug", "quic_varint.lfp", "quic_varint_bug.lfp",
       false},
  };
  return Pairs;
}

const char *verdictName(core::Verdict V) {
  switch (V) {
  case core::Verdict::Equivalent:
    return "equivalent";
  case core::Verdict::NotEquivalent:
    return "NOT equivalent";
  case core::Verdict::ResourceLimit:
    return "DNF (budget)";
  case core::Verdict::BadRequest:
    return "bad request";
  }
  return "?";
}

bool statsIdentical(const core::CheckStats &A, const core::CheckStats &B) {
  return A.Iterations == B.Iterations && A.Extends == B.Extends &&
         A.Skips == B.Skips && A.SmtQueries == B.SmtQueries &&
         A.ReachPairs == B.ReachPairs &&
         A.TemplatesLeft == B.TemplatesLeft &&
         A.TemplatesRight == B.TemplatesRight &&
         A.FinalConjuncts == B.FinalConjuncts &&
         A.PeakFrontier == B.PeakFrontier &&
         A.FormulaNodes == B.FormulaNodes &&
         A.WallMicros == B.WallMicros && A.SolverMicros == B.SolverMicros;
}

//===----------------------------------------------------------------------===//
// Default mode: warm-service replay.
//===----------------------------------------------------------------------===//

int runReplay(const std::string &Dir, size_t Jobs,
              const std::string &JsonPath) {
  serve::ServiceConfig Config;
  Config.Engine.Jobs = Jobs;
  std::string Err;
  std::unique_ptr<serve::CheckService> Svc =
      serve::CheckService::create(Config, &Err);
  if (!Svc) {
    std::fprintf(stderr, "bench_serve: %s\n", Err.c_str());
    return 2;
  }

  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::printf("Warm-service corpus replay (dir: %s, jobs: %zu)\n\n",
              Dir.c_str(), Jobs);
  std::printf("%-26s %12s %10s %9s %s\n", "Pair", "Cold(us)", "Hit(us)",
              "Speedup", "Verdict");
  std::printf("%s\n", std::string(78, '-').c_str());

  struct Row {
    std::string Label;
    const char *Verdict = "?";
    uint64_t ColdMicros = 0;
    uint64_t HitMicros = 0;
    bool Hit = false;
    bool Identical = false;
  };
  std::vector<Row> Rows;
  bool Ok = true;
  uint64_t ColdTotal = 0, HitTotal = 0;
  // Some corpus entries are the same request under different names
  // (relational_verification / external_filtering commit the same
  // parsers; their §7.1 specs are not part of this pipeline), so a
  // "cold" pass may legitimately hit — track keys to tell.
  std::set<std::string> Seen;

  for (const PairSpec &P : corpusPairs()) {
    std::string LeftText, RightText;
    if (!readFile(Dir + "/" + P.LeftFile, LeftText) ||
        !readFile(Dir + "/" + P.RightFile, RightText)) {
      std::fprintf(stderr, "bench_serve: cannot read pair '%s' in '%s'\n",
                   P.Label, Dir.c_str());
      return 2;
    }
    core::CheckOptions Options;
    Options.MaxIterations = P.Budgeted ? 20000 : (1u << 20);
    Options.MaxWallMicros = P.Budgeted ? 120u * 1000u * 1000u : 0;

    core::CheckRequest Req;
    std::vector<std::string> Errors;
    if (!core::checkRequestFromSurface(LeftText, RightText, Options, Req,
                                       Errors, P.LeftFile, P.RightFile)) {
      std::fprintf(stderr, "bench_serve: '%s' rejected: %s\n", P.Label,
                   Errors.empty() ? "?" : Errors.front().c_str());
      return 2;
    }

    bool Dup = !Seen.insert(serve::makeCacheKey(Req).Canonical).second;
    Clock::time_point T0 = Clock::now();
    serve::CheckService::Outcome Cold = Svc->submit(Req);
    uint64_t ColdMicros = microsSince(T0);
    T0 = Clock::now();
    serve::CheckService::Outcome Warm = Svc->submit(Req);
    uint64_t HitMicros = microsSince(T0);

    Row R;
    R.Label = P.Label;
    R.Verdict = verdictName(Cold.Result.V);
    R.ColdMicros = ColdMicros;
    R.HitMicros = HitMicros;
    R.Hit = !Warm.rejected() && Warm.CacheHit && Cold.CacheHit == Dup &&
            !Cold.rejected();
    R.Identical = R.Hit && Warm.Result.V == Cold.Result.V &&
                  Warm.Result.FailureReason == Cold.Result.FailureReason &&
                  Warm.CertificateText == Cold.CertificateText &&
                  statsIdentical(Warm.Result.Stats, Cold.Result.Stats);
    Ok &= R.Identical;
    ColdTotal += ColdMicros;
    HitTotal += HitMicros;
    Rows.push_back(R);

    double Speedup =
        HitMicros ? double(ColdMicros) / double(HitMicros)
                  : double(ColdMicros); // Sub-microsecond hit: lower bound.
    std::printf("%-26s %12zu %10zu %8.0fx %s%s\n", P.Label,
                size_t(ColdMicros), size_t(HitMicros), Speedup, R.Verdict,
                R.Identical ? "" : "  ** NOT BIT-IDENTICAL / NOT A HIT **");
  }

  serve::CheckService::Stats S = Svc->stats();
  double Overall = HitTotal ? double(ColdTotal) / double(HitTotal)
                            : double(ColdTotal);
  bool FastEnough = Overall >= 100.0;
  Ok &= FastEnough;
  std::printf("\ncold total %.3fs, warm total %.3fs, aggregate speedup "
              "%.0fx (required >= 100x)\n",
              double(ColdTotal) / 1e6, double(HitTotal) / 1e6, Overall);
  std::printf("service: %zu submitted, %zu computed, cache %zu hits / %zu "
              "misses / %zu collisions\n",
              S.Submitted, S.Computed, S.Cache.Hits, S.Cache.Misses,
              S.Cache.Collisions);
  std::printf("%s\n", Ok ? "every repeat answered from cache, bit-identical"
                         : "** replay FAILED the cache contract **");

  if (!JsonPath.empty()) {
    serve::Json Doc = serve::Json::object();
    Doc.set("bench", serve::Json::str("serve_replay"));
    Doc.set("jobs", serve::Json::unsignedInt(Jobs));
    Doc.set("cold_total_micros", serve::Json::unsignedInt(ColdTotal));
    Doc.set("hit_total_micros", serve::Json::unsignedInt(HitTotal));
    Doc.set("aggregate_speedup", serve::Json::number(Overall));
    Doc.set("ok", serve::Json::boolean(Ok));
    serve::Json Arr = serve::Json::array();
    for (const Row &R : Rows) {
      serve::Json O = serve::Json::object();
      O.set("pair", serve::Json::str(R.Label));
      O.set("verdict", serve::Json::str(R.Verdict));
      O.set("cold_micros", serve::Json::unsignedInt(R.ColdMicros));
      O.set("hit_micros", serve::Json::unsignedInt(R.HitMicros));
      O.set("cache_hit", serve::Json::boolean(R.Hit));
      O.set("bit_identical", serve::Json::boolean(R.Identical));
      Arr.push(O);
    }
    Doc.set("pairs", Arr);
    std::ofstream Out(JsonPath);
    if (!Out) {
      std::fprintf(stderr, "bench_serve: cannot write '%s'\n",
                   JsonPath.c_str());
      return 2;
    }
    Out << Doc.serialize() << "\n";
    std::printf("wrote %s\n", JsonPath.c_str());
  }
  return Ok ? 0 : 1;
}

//===----------------------------------------------------------------------===//
// --smoke: drive the real binary over pipes.
//===----------------------------------------------------------------------===//

struct ServeProcess {
  pid_t Pid = -1;
  int In = -1;  ///< Write end: the daemon's stdin.
  int Out = -1; ///< Read end: the daemon's stdout.
  FILE *OutFile = nullptr;
};

bool spawnServe(const std::string &Bin, ServeProcess &P) {
  int ToChild[2], FromChild[2];
  if (pipe(ToChild) != 0 || pipe(FromChild) != 0)
    return false;
  P.Pid = fork();
  if (P.Pid < 0)
    return false;
  if (P.Pid == 0) {
    dup2(ToChild[0], STDIN_FILENO);
    dup2(FromChild[1], STDOUT_FILENO);
    close(ToChild[0]);
    close(ToChild[1]);
    close(FromChild[0]);
    close(FromChild[1]);
    execl(Bin.c_str(), Bin.c_str(), "--stdio", (char *)nullptr);
    std::fprintf(stderr, "bench_serve: cannot exec '%s'\n", Bin.c_str());
    _exit(127);
  }
  close(ToChild[0]);
  close(FromChild[1]);
  P.In = ToChild[1];
  P.Out = FromChild[0];
  P.OutFile = fdopen(P.Out, "r");
  return P.OutFile != nullptr;
}

bool roundTrip(ServeProcess &P, const serve::Json &Request,
               serve::Json &Response) {
  std::string Line = Request.serialize() + "\n";
  if (::write(P.In, Line.data(), Line.size()) != ssize_t(Line.size()))
    return false;
  char *Buf = nullptr;
  size_t Cap = 0;
  ssize_t Len = getline(&Buf, &Cap, P.OutFile);
  if (Len <= 0) {
    free(Buf);
    return false;
  }
  std::string Text(Buf, size_t(Len));
  free(Buf);
  std::string Err;
  if (!serve::Json::parse(Text, Response, &Err)) {
    std::fprintf(stderr, "bench_serve: bad response: %s: %s\n", Err.c_str(),
                 Text.c_str());
    return false;
  }
  return true;
}

int runSmoke(const std::string &Dir, const std::string &Bin) {
  std::printf("serve smoke: %s --stdio (corpus: %s)\n", Bin.c_str(),
              Dir.c_str());
  ServeProcess P;
  if (!spawnServe(Bin, P)) {
    std::fprintf(stderr, "bench_serve: failed to start '%s'\n", Bin.c_str());
    return 2;
  }

  auto fail = [&](const char *Why) {
    std::fprintf(stderr, "bench_serve: smoke FAILED: %s\n", Why);
    kill(P.Pid, SIGKILL);
    int Status = 0;
    waitpid(P.Pid, &Status, 0);
    return 1;
  };

  serve::Json Pong;
  if (!roundTrip(P, [] {
        serve::Json R = serve::Json::object();
        R.set("op", serve::Json::str("ping"));
        return R;
      }(), Pong) ||
      !Pong.getBool("pong", false))
    return fail("no pong");

  // Three fast corpus pairs, then the first again: that repeat must be a
  // cache hit with the same stats object.
  const PairSpec Smoke[] = {
      {"ipv6_chain vs opt", "ipv6_chain.lfp", "ipv6_chain_opt.lfp", false},
      {"ipv6_chain vs bug", "ipv6_chain.lfp", "ipv6_chain_bug.lfp", false},
      {"vlan_qinq vs opt", "vlan_qinq.lfp", "vlan_qinq_opt.lfp", false},
  };
  serve::Json FirstResponse;
  for (const PairSpec &Pair : Smoke) {
    std::string LeftText, RightText;
    if (!readFile(Dir + "/" + Pair.LeftFile, LeftText) ||
        !readFile(Dir + "/" + Pair.RightFile, RightText))
      return fail("cannot read corpus pair (pass the corpus dir)");
    serve::Json Req = serve::Json::object();
    Req.set("op", serve::Json::str("check"));
    Req.set("id", serve::Json::str(Pair.Label));
    Req.set("left", serve::Json::str(LeftText));
    Req.set("right", serve::Json::str(RightText));
    serve::Json Res;
    if (!roundTrip(P, Req, Res))
      return fail("no response to check");
    if (!Res.getBool("ok", false))
      return fail(("check not ok: " + Res.serialize()).c_str());
    if (Res.getString("cache") != "miss")
      return fail("first submission was not a miss");
    std::printf("  %-24s %s (%s, %s us)\n", Pair.Label,
                Res.getString("verdict").c_str(),
                Res.getString("cache").c_str(),
                std::to_string(Res.getUnsigned("micros", 0)).c_str());
    if (&Pair == &Smoke[0])
      FirstResponse = Res;
  }

  {
    std::string LeftText, RightText;
    readFile(Dir + "/" + Smoke[0].LeftFile, LeftText);
    readFile(Dir + "/" + Smoke[0].RightFile, RightText);
    serve::Json Req = serve::Json::object();
    Req.set("op", serve::Json::str("check"));
    Req.set("id", serve::Json::str("repeat"));
    Req.set("left", serve::Json::str(LeftText));
    Req.set("right", serve::Json::str(RightText));
    serve::Json Res;
    if (!roundTrip(P, Req, Res))
      return fail("no response to repeat");
    if (Res.getString("cache") != "hit")
      return fail("repeat submission was not a cache hit");
    if (Res.getString("verdict") != FirstResponse.getString("verdict"))
      return fail("repeat verdict differs");
    if (Res.get("stats").serialize() !=
        FirstResponse.get("stats").serialize())
      return fail("repeat stats are not bit-identical");
    std::printf("  %-24s %s (%s)\n", "repeat of first",
                Res.getString("verdict").c_str(),
                Res.getString("cache").c_str());
  }

  serve::Json Bye;
  if (!roundTrip(P, [] {
        serve::Json R = serve::Json::object();
        R.set("op", serve::Json::str("shutdown"));
        return R;
      }(), Bye) ||
      !Bye.getBool("bye", false))
    return fail("no shutdown acknowledgement");

  close(P.In);
  fclose(P.OutFile);
  int Status = 0;
  if (waitpid(P.Pid, &Status, 0) != P.Pid)
    return fail("waitpid");
  if (!WIFEXITED(Status) || WEXITSTATUS(Status) != 0) {
    std::fprintf(stderr, "bench_serve: smoke FAILED: daemon exit status %d\n",
                 Status);
    return 1;
  }
  std::printf("smoke ok: 3 misses, 1 hit, clean shutdown\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Dir = "examples/corpus";
  std::string JsonPath;
  std::string ServeBin;
  size_t Jobs = 1;
  bool Smoke = false;

  if (const char *Env = std::getenv("LEAPFROG_SERVE_BIN"))
    ServeBin = Env;

  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--smoke")) {
      Smoke = true;
    } else if (!std::strcmp(Argv[I], "--jobs") && I + 1 < Argc) {
      Jobs = size_t(std::strtoull(Argv[++I], nullptr, 10));
      if (Jobs < 1)
        Jobs = 1;
    } else if (!std::strcmp(Argv[I], "--json") && I + 1 < Argc) {
      JsonPath = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--serve-bin") && I + 1 < Argc) {
      ServeBin = Argv[++I];
    } else if (Argv[I][0] != '-') {
      Dir = Argv[I];
    } else {
      std::fprintf(stderr,
                   "usage: %s [corpus-dir] [--jobs N] [--json FILE]\n"
                   "       %s --smoke [corpus-dir] [--serve-bin PATH]\n",
                   Argv[0], Argv[0]);
      return 2;
    }
  }

  if (Smoke)
    return runSmoke(Dir, ServeBin.empty() ? "./leapfrog-serve" : ServeBin);
  return runReplay(Dir, Jobs, JsonPath);
}
