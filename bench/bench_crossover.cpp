//===- bench_crossover.cpp - Symbolic vs explicit-state crossover ----------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Quantifies the paper's central scaling argument (§2/§4):
//
//   "the automata in Figure 1 have a joint configuration space on the
//    order of 2^128 ≈ 10^38 states! So, naive bisimulation-based
//    approaches will never be tractable for realistic automata."
//
// We sweep the Figure 1 MPLS pair over label widths and race the symbolic
// checker against the classical explicit-state pipeline (materialize the
// configuration DFA, then Hopcroft–Karp / Hopcroft / Paige–Tarjan). The
// expected shape: explicit methods grow exponentially in the label width
// and hit the state budget within a few doublings, while the symbolic
// checker's iteration count is *independent* of the width and its runtime
// grows only with formula (bitvector) sizes.
//
//===----------------------------------------------------------------------===//

#include "algorithms/HopcroftKarp.h"
#include "core/Checker.h"
#include "parsers/CaseStudies.h"

#include <cstdio>

using namespace leapfrog;
using namespace leapfrog::algorithms;

namespace {

constexpr size_t ConfigBudget = 1u << 19; // ~500k configurations.

const char *verdictStr(ExplicitCheckResult::Verdict V) {
  switch (V) {
  case ExplicitCheckResult::Verdict::Equivalent:
    return "equivalent";
  case ExplicitCheckResult::Verdict::NotEquivalent:
    return "NOT equiv";
  case ExplicitCheckResult::Verdict::ResourceLimit:
    return "DNF";
  }
  return "?";
}

void runWidth(size_t LabelBits) {
  p4a::Automaton Ref = parsers::mplsReferenceScaled(LabelBits);
  p4a::Automaton Vec = parsers::mplsVectorizedScaled(LabelBits);
  p4a::Config InitL = p4a::initialConfig(
      p4a::StateRef::normal(*Ref.findState("q1")), p4a::Store(Ref));
  p4a::Config InitR = p4a::initialConfig(
      p4a::StateRef::normal(*Vec.findState("q3")), p4a::Store(Vec));

  std::printf("label width %zu (joint store %zu bits)\n", LabelBits,
              Ref.totalHeaderBits() + Vec.totalHeaderBits());

  struct Row {
    const char *Name;
    ExplicitAlgorithm Algo;
  };
  const Row Rows[] = {
      {"explicit Hopcroft-Karp", ExplicitAlgorithm::HopcroftKarp},
      {"explicit Hopcroft", ExplicitAlgorithm::Hopcroft},
      {"explicit Paige-Tarjan", ExplicitAlgorithm::PaigeTarjan},
  };
  for (const Row &R : Rows) {
    ExplicitCheckResult Res = checkEquivalenceExplicit(
        Ref, InitL, Vec, InitR, ConfigBudget, R.Algo);
    std::printf("  %-24s %10s  dfa states %9zu  %8.2f s\n", R.Name,
                verdictStr(Res.V), Res.DfaStates,
                double(Res.WallMicros) / 1e6);
    if (Res.V == ExplicitCheckResult::Verdict::ResourceLimit)
      break; // The siblings share the extraction cost and fail the same way.
  }

  core::CheckResult Sym =
      core::checkLanguageEquivalence(Ref, "q1", Vec, "q3");
  std::printf("  %-24s %10s  iterations %9zu  %8.2f s  (%zu SMT queries)\n\n",
              "symbolic (Leapfrog)",
              Sym.equivalent() ? "equivalent" : "NOT equiv",
              Sym.Stats.Iterations, double(Sym.Stats.WallMicros) / 1e6,
              Sym.Stats.SmtQueries);
}

} // namespace

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::printf(
      "Crossover: explicit-state baselines vs the symbolic checker on the\n"
      "Figure 1 family, scaling the MPLS label width. Explicit methods\n"
      "materialize the configuration DFA (budget %zu states) and go DNF\n"
      "once 2^(header bits) passes the budget; the symbolic checker's\n"
      "iteration count stays constant.\n\n",
      ConfigBudget);
  for (size_t W : {2, 4, 6, 8, 10, 16, 32})
    runWidth(W);
  return 0;
}
