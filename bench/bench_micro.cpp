//===- bench_micro.cpp - Substrate microbenchmarks ------------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks for the individual subsystems feeding
// the checker's hot loop: the concrete automaton step (used by the test
// oracle), reachability analysis, WP computation, the Figure 6 lowering
// chain, bit-blasting, and end-to-end SMT validity queries at several
// bitwidths. These are the knobs DESIGN.md §5 calls out; regressions here
// translate directly into checker wall time.
//
//===----------------------------------------------------------------------===//

#include "algorithms/HopcroftKarp.h"
#include "core/Checker.h"
#include "frontend/Elaborate.h"
#include "parsers/Rfc.h"
#include "core/WeakestPrecondition.h"
#include "logic/Lower.h"
#include "parsers/CaseStudies.h"
#include "smt/Solver.h"

#include <benchmark/benchmark.h>

using namespace leapfrog;
using namespace leapfrog::core;
using namespace leapfrog::logic;

namespace {

void BM_ConcreteStep(benchmark::State &State) {
  p4a::Automaton A = parsers::mplsReference();
  p4a::Config C = p4a::initialConfig(
      p4a::StateRef::normal(*A.findState("q1")), p4a::Store(A));
  bool Bit = false;
  for (auto _ : State) {
    C = p4a::step(A, std::move(C), Bit);
    Bit = !Bit;
    if (C.Q.isTerminal())
      C = p4a::initialConfig(p4a::StateRef::normal(0), p4a::Store(A));
  }
}
BENCHMARK(BM_ConcreteStep);

void BM_Reachability(benchmark::State &State) {
  p4a::Automaton A = parsers::gibbDatacenter();
  TemplatePair Start{Template{p4a::StateRef::normal(0), 0},
                     Template{p4a::StateRef::normal(0), 0}};
  for (auto _ : State)
    benchmark::DoNotOptimize(computeReach(A, A, Start, true));
}
BENCHMARK(BM_Reachability);

void BM_WeakestPrecondition(benchmark::State &State) {
  p4a::Automaton L = parsers::mplsReference();
  p4a::Automaton R = parsers::mplsVectorized();
  TemplatePair Start{Template{p4a::StateRef::normal(0), 0},
                     Template{p4a::StateRef::normal(0), 0}};
  auto Pairs = computeReach(L, R, Start, true);
  auto U = BitExpr::mkHdr(Side::Left, *L.findHeader("udp"));
  auto V = BitExpr::mkHdr(Side::Right, *R.findHeader("udp"));
  GuardedFormula Goal{TemplatePair{Template::accept(), Template::accept()},
                      Pure::mkEq(U, V)};
  size_t Fresh = 0;
  for (auto _ : State)
    benchmark::DoNotOptimize(
        weakestPrecondition(L, R, Goal, Pairs, true, Fresh));
}
BENCHMARK(BM_WeakestPrecondition);

void BM_LoweringChain(benchmark::State &State) {
  p4a::Automaton L = parsers::mplsReference();
  p4a::Automaton R = parsers::mplsVectorized();
  TemplatePair TP{Template{p4a::StateRef::normal(*L.findState("q2")), 0},
                  Template{p4a::StateRef::normal(*R.findState("q5")), 0}};
  auto U = BitExpr::mkHdr(Side::Left, *L.findHeader("udp"));
  auto V = BitExpr::mkHdr(Side::Right, *R.findHeader("udp"));
  std::vector<GuardedFormula> Premises{
      {TP, Pure::mkEq(BitExpr::mkHdr(Side::Left, *L.findHeader("mpls")),
                      BitExpr::mkLit(Bitvector(32)))}};
  GuardedFormula Goal{TP, Pure::mkEq(U, V)};
  for (auto _ : State)
    benchmark::DoNotOptimize(lowerEntailment(L, R, Premises, Goal));
}
BENCHMARK(BM_LoweringChain);

void BM_SolverValidity(benchmark::State &State) {
  // (x ++ y)[0:w-1] = x — valid; exercises blasting + UNSAT search.
  size_t W = size_t(State.range(0));
  auto X = smt::BvTerm::mkVar("x", W);
  auto Y = smt::BvTerm::mkVar("y", W);
  auto F = smt::BvFormula::mkEq(
      smt::BvTerm::mkExtract(smt::BvTerm::mkConcat(X, Y), 0, W - 1), X);
  for (auto _ : State) {
    smt::BitBlastSolver S;
    benchmark::DoNotOptimize(S.isValid(F));
  }
}
BENCHMARK(BM_SolverValidity)->Arg(32)->Arg(128)->Arg(512);

void BM_SolverSatSearch(benchmark::State &State) {
  // x != c1 ∧ x != c2 ∧ ... forces real search for a witness.
  size_t W = size_t(State.range(0));
  auto X = smt::BvTerm::mkVar("x", W);
  smt::BvFormulaRef F = smt::BvFormula::mkTrue();
  for (uint64_t I = 0; I < 8; ++I)
    F = smt::BvFormula::mkAnd(
        F, smt::BvFormula::mkNot(smt::BvFormula::mkEq(
               X, smt::BvTerm::mkConst(Bitvector::fromUint(I * 37, W)))));
  for (auto _ : State) {
    smt::BitBlastSolver S;
    benchmark::DoNotOptimize(S.checkSat(F, nullptr));
  }
}
BENCHMARK(BM_SolverSatSearch)->Arg(16)->Arg(64);

void BM_CheckerEndToEnd(benchmark::State &State) {
  p4a::Automaton L = parsers::rearrangeReference();
  p4a::Automaton R = parsers::rearrangeCombined();
  for (auto _ : State) {
    smt::BitBlastSolver S;
    CheckOptions O;
    O.Solver = &S;
    benchmark::DoNotOptimize(checkLanguageEquivalence(
        L, "parse_ip", R, "parse_combined", O));
  }
}
BENCHMARK(BM_CheckerEndToEnd);

void BM_CertificateReplay(benchmark::State &State) {
  p4a::Automaton L = parsers::rearrangeReference();
  p4a::Automaton R = parsers::rearrangeCombined();
  CheckResult Res =
      checkLanguageEquivalence(L, "parse_ip", R, "parse_combined");
  for (auto _ : State) {
    smt::BitBlastSolver S;
    benchmark::DoNotOptimize(
        replayCertificate(L, R, Res.Certificate, &S));
  }
}
BENCHMARK(BM_CertificateReplay);

void BM_CertifiedSolve(benchmark::State &State) {
  // The marginal cost of DRUP proof logging + replay on an UNSAT query
  // (vs BM_SolverSatSearch, which has no certification).
  size_t W = size_t(State.range(0));
  auto X = smt::BvTerm::mkVar("x", W);
  // x ≠ c for every c in a small set AND x = one of them: UNSAT.
  auto F = smt::BvFormula::mkEq(
      X, smt::BvTerm::mkConst(Bitvector::fromUint(37, W)));
  F = smt::BvFormula::mkAnd(
      F, smt::BvFormula::mkNot(smt::BvFormula::mkEq(
             X, smt::BvTerm::mkConst(Bitvector::fromUint(37, W)))));
  for (auto _ : State) {
    smt::BitBlastSolver S;
    S.CertifyUnsat = true;
    benchmark::DoNotOptimize(S.checkSat(F, nullptr));
  }
}
BENCHMARK(BM_CertifiedSolve)->Arg(16)->Arg(64);

void BM_ConfigDfaExtraction(benchmark::State &State) {
  // Explicit-state baseline cost: materializing the configuration DFA
  // of the width-4 Figure 1 family (~80k states; see bench_crossover).
  p4a::Automaton Ref = parsers::mplsReferenceScaled(4);
  p4a::Config Init = p4a::initialConfig(
      p4a::StateRef::normal(*Ref.findState("q1")), p4a::Store(Ref));
  for (auto _ : State) {
    benchmark::DoNotOptimize(
        algorithms::extractConfigDfa(Ref, Init, 1u << 18));
  }
}
BENCHMARK(BM_ConfigDfaExtraction);

void BM_PartitionRefinement(benchmark::State &State) {
  // Moore vs Hopcroft vs Paige–Tarjan on the same extracted DFA
  // (range(0) selects the algorithm).
  p4a::Automaton Ref = parsers::mplsReferenceScaled(2);
  p4a::Config Init = p4a::initialConfig(
      p4a::StateRef::normal(*Ref.findState("q1")), p4a::Store(Ref));
  algorithms::DfaExtraction E =
      algorithms::extractConfigDfa(Ref, Init, 1u << 18);
  for (auto _ : State) {
    switch (State.range(0)) {
    case 0:
      benchmark::DoNotOptimize(algorithms::mooreRefine(E.D));
      break;
    case 1:
      benchmark::DoNotOptimize(algorithms::hopcroftRefine(E.D));
      break;
    default:
      benchmark::DoNotOptimize(
          algorithms::paigeTarjanRefine(algorithms::dfaToLts(E.D)));
      break;
    }
  }
}
BENCHMARK(BM_PartitionRefinement)->Arg(0)->Arg(1)->Arg(2);

void BM_SurfaceElaboration(benchmark::State &State) {
  // Front-end cost: the full enterprise RFC stack (28 states, stacks of
  // option states) through all elaboration passes.
  for (auto _ : State) {
    benchmark::DoNotOptimize(
        frontend::elaborate(rfc::standardEnterpriseStack()));
  }
}
BENCHMARK(BM_SurfaceElaboration);

} // namespace

BENCHMARK_MAIN();
