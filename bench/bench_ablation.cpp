//===- bench_ablation.cpp - §5 optimization ablations ---------------------===//
//
// Part of leapfrog-cc, a C++ reproduction of "Leapfrog: Certified Equivalence
// for Protocol Parsers" (PLDI 2022).
//
//===----------------------------------------------------------------------===//
//
// Reproduces the §7.3 "Overall Performance" ablation paragraph:
//
//   "our smallest State Rearrangement benchmark went from 30 seconds and
//    1.7 GB of memory to 42 minutes and 36 GB of memory when leaps were
//    disabled; it did not finish without reachable state pruning."
//
// For each small case study we run the checker in all four optimization
// configurations (leaps × reachability, §5.3) under an iteration budget,
// reporting iterations, conjuncts, SMT queries and runtime. The expected
// shape: leaps off costs 1–2 orders of magnitude in iterations/queries;
// reachability off is worse still and routinely exhausts the budget
// ("DNF"), matching the paper's observation.
//
//===----------------------------------------------------------------------===//

#include "core/Checker.h"
#include "parsers/CaseStudies.h"

#include <cstdio>

using namespace leapfrog;
using namespace leapfrog::core;

namespace {

struct Subject {
  const char *Name;
  p4a::Automaton L, R;
  const char *QL, *QR;
};

void runConfig(const Subject &S, bool Leaps, bool Reach) {
  CheckOptions O;
  O.UseLeaps = Leaps;
  O.UseReachability = Reach;
  O.MaxIterations = 15000;
  // Fully-ablated configs walk bit-level WP over the whole template
  // product; cap them by wall clock the way the paper's runs were capped
  // by memory.
  O.MaxWallMicros = 30u * 1000 * 1000;
  CheckResult Res = checkLanguageEquivalence(S.L, S.QL, S.R, S.QR, O);
  const char *V = Res.V == Verdict::Equivalent
                      ? "equivalent"
                      : (Res.V == Verdict::NotEquivalent ? "NOT equiv"
                                                         : "DNF");
  std::printf("  %-5s %-5s %10zu %10zu %9zu %10.2f  %s\n",
              Leaps ? "on" : "off", Reach ? "on" : "off",
              Res.Stats.Iterations, Res.Stats.FinalConjuncts,
              Res.Stats.SmtQueries, double(Res.Stats.WallMicros) / 1e6, V);
}

} // namespace

int main() {
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::printf("Optimization ablations (paper §5, §7.3). DNF = iteration "
              "budget or 30 s wall clock exhausted,\nmirroring the paper's "
              "out-of-memory/did-not-finish outcomes.\n\n");

  Subject Subjects[] = {
      {"State Rearrangement", parsers::rearrangeReference(),
       parsers::rearrangeCombined(), "parse_ip", "parse_combined"},
      {"Speculative loop (Fig. 1)", parsers::mplsReference(),
       parsers::mplsVectorized(), "q1", "q3"},
      {"Header initialization", parsers::vlanParser(), parsers::vlanParser(),
       "parse_eth", "parse_eth"},
  };

  for (const Subject &S : Subjects) {
    std::printf("%s\n", S.Name);
    std::printf("  %-5s %-5s %10s %10s %9s %10s  %s\n", "leaps", "reach",
                "iters", "conjuncts", "queries", "time(s)", "verdict");
    // Order: both on (the paper's configuration) first, then single
    // ablations, then both off.
    runConfig(S, true, true);
    runConfig(S, false, true);
    runConfig(S, true, false);
    runConfig(S, false, false);
    std::printf("\n");
  }
  return 0;
}
